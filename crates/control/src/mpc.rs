//! Model-predictive controller for rack batch-power tracking (§V-B).
//!
//! Plant model (Eq. (4)): the controlled power is linear in the actuated
//! frequencies, `p(t+1) = p(t) + Σⱼ kⱼ·Δfⱼ(t)`. Each control period the
//! controller minimizes the cost of Eq. (8):
//!
//! ```text
//! W = Σₙ₌₁..Lp  Q(n)·(p(t+n|t) − p_r(t+n|t))²                (tracking)
//!   + Σₙ₌₀..Lc₋₁ Σⱼ Rⱼ·(fⱼ(t+n|t) − f_max,ⱼ)²               (penalty)
//! ```
//!
//! subject to the DVFS box constraints of Eq. (9), where the reference
//! trajectory `p_r` (Eq. (7)) approaches the set point exponentially from
//! the *measured* feedback power, so model error is corrected every
//! period. The decision variables are the planned absolute frequencies
//! `y_{j,n}` (rather than the increments), which turns Eq. (9) into plain
//! box constraints and the whole problem into the box QP of
//! [`crate::qp`].
//!
//! The penalty weights `Rⱼ` implement the paper's progress balancing: a
//! batch job that is behind (large `R`) is expensive to hold below peak
//! frequency, so the optimizer throttles the jobs that can afford it.

use crate::linalg::Mat;
use crate::qp::{QpProblem, QpSolution, QpWorkspace};
use crate::qp_structured::solve_blocks_into_warm;

/// Which QP machinery [`MpcController::compute`] runs each period.
///
/// Both backends minimize the same Eq. (8) cost over the same Eq. (9)
/// box; they agree to well under 1e-6 in solution and KKT residual (the
/// `bench_engine` agreement gate and the closed-loop tests enforce it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MpcBackend {
    /// Exploit the block-separable diagonal-plus-rank-one structure of
    /// the Eq. (8) Hessian: per-block scalars assembled directly (no
    /// dense matrix is ever built) and each block solved by the O(n)
    /// root find of [`crate::qp_structured`]. The production default —
    /// a control period costs O(n·Lc) instead of O((n·Lc)²) per FISTA
    /// iteration.
    #[default]
    Structured,
    /// Materialize the dense Hessian and run FISTA
    /// ([`QpProblem::solve_with`]). Kept as the cross-validation
    /// reference and for problems whose structure assumptions break
    /// (e.g. a degenerate `r_scale = 0` penalty).
    DenseFista,
}

/// Tracking-step count feeding control block `b`: blocks before the last
/// feed exactly one prediction step; the last block holds for the rest of
/// the horizon (decision `x[b·n + j]` = planned absolute frequency of
/// channel `j` in block `b`, and the power predicted at `t+s` uses block
/// `min(s−1, lc−1)`). Free function so assembly code holding field
/// borrows can call it.
fn steps_fed(lp: usize, lc: usize, b: usize) -> usize {
    if b + 1 < lc {
        1
    } else {
        lp - (lc - 1)
    }
}

/// Eq. (7) reference trajectory: the power wanted `steps` periods ahead,
/// approaching `target` exponentially from the measured feedback `p_fb`
/// with time constant `tau_r`. Free function so the hot-path assembly
/// (which holds field borrows) and [`MpcController::reference`] share one
/// definition.
pub fn reference_at(target: f64, p_fb: f64, steps: usize, period: f64, tau_r: f64) -> f64 {
    let decay = (-(steps as f64) * period / tau_r).exp();
    target - decay * (target - p_fb)
}

/// Static MPC configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MpcConfig {
    /// Prediction horizon `Lp` (periods).
    pub lp: usize,
    /// Control horizon `Lc ≤ Lp` (periods).
    pub lc: usize,
    /// Reference-trajectory time constant `τ_r`, seconds.
    pub tau_r: f64,
    /// Control period `Ts`, seconds.
    pub period: f64,
    /// Tracking weight `Q` (uniform over the horizon).
    pub q: f64,
    /// Scale applied to the per-channel penalty weights `Rⱼ`.
    pub r_scale: f64,
}

impl MpcConfig {
    /// The configuration used throughout the evaluation: an 8-step
    /// prediction horizon, 2-step control horizon, 1 s period, and a
    /// reference that closes ~63% of the gap every 4 s.
    pub fn paper_default() -> Self {
        MpcConfig {
            lp: 8,
            lc: 2,
            tau_r: 4.0,
            period: 1.0,
            q: 1.0,
            r_scale: 8.0,
        }
    }

    fn validate(&self) {
        assert!(self.lp >= 1, "prediction horizon must be at least 1");
        assert!(
            (1..=self.lp).contains(&self.lc),
            "control horizon must be in [1, Lp]"
        );
        assert!(self.tau_r > 0.0 && self.period > 0.0);
        assert!(self.q > 0.0 && self.r_scale >= 0.0);
    }
}

/// The MPC power controller over `N` actuated channels (batch cores).
#[derive(Debug, Clone)]
pub struct MpcController {
    pub cfg: MpcConfig,
    /// Per-channel power gains `kⱼ` (watts per unit normalized
    /// frequency), from the linear model of Eq. (2)/(3).
    gains: Vec<f64>,
    /// Per-channel frequency ceiling (Eq. (9)); the floor lives only in
    /// the prebuilt QP box bounds.
    fmax: Vec<f64>,
    /// Per-channel penalty weights `Rⱼ` (progress balancing, §V-B).
    r: Vec<f64>,
    /// Floor applied to `Rⱼ` to keep the Hessian positive definite.
    pub r_floor: f64,
    /// Preallocated QP instance: `H`/`g` are rebuilt in place every
    /// control period, `lo`/`hi` are the box bounds replicated per block
    /// and never change. Reusing it removes the per-period `Mat::zeros`
    /// (512 KiB at 128 channels × 2 blocks) and bound-vector churn. The
    /// structured backend only reads its `lo`/`hi`.
    qp: QpProblem,
    /// Preallocated FISTA iteration buffers, reused across periods
    /// (dense backend only).
    ws: QpWorkspace,
    /// Which solver `compute` runs.
    backend: MpcBackend,
    /// Preallocated structured-assembly buffers, reused across periods.
    sb: StructuredBuffers,
}

/// Scratch for the structured backend: the per-block coupling scalars
/// plus the diagonal/linear terms and solution over the full `n·Lc`
/// decision vector. Sized once at construction; the hot path rebuilds
/// them in place.
#[derive(Debug, Clone, Default)]
struct StructuredBuffers {
    /// Per-block rank-one weight `c_b = 2q·(tracking steps fed)`.
    c: Vec<f64>,
    /// Diagonal `d` (progress penalties), length `n·Lc`.
    d: Vec<f64>,
    /// Linear term `g`, length `n·Lc`.
    g: Vec<f64>,
    /// Solution vector, length `n·Lc`.
    x: Vec<f64>,
    /// Per-block coupling-scalar roots `u_b = kᵀy_b` carried across
    /// control periods as warm-start hints (NaN = cold). The solver's
    /// stale-bracket guard rejects a carried root whenever the bracket
    /// has moved (gains/weights/target changed), so this only ever
    /// speeds the root find up.
    warm_u: Vec<f64>,
}

/// One control decision.
#[derive(Debug, Clone)]
pub struct MpcDecision {
    /// New frequency command per channel (the first planned move).
    pub freqs: Vec<f64>,
    /// Power the model predicts for the next period under this command.
    pub predicted_power: f64,
    /// Diagnostics from the underlying QP solve.
    pub qp: QpSolution,
}

impl MpcController {
    /// Build a controller on the default [`MpcBackend::Structured`]
    /// solver.
    pub fn new(cfg: MpcConfig, gains: Vec<f64>, fmin: Vec<f64>, fmax: Vec<f64>) -> Self {
        Self::with_backend(cfg, gains, fmin, fmax, MpcBackend::default())
    }

    pub fn with_backend(
        cfg: MpcConfig,
        gains: Vec<f64>,
        fmin: Vec<f64>,
        fmax: Vec<f64>,
        backend: MpcBackend,
    ) -> Self {
        cfg.validate();
        let n = gains.len();
        assert!(n > 0, "controller needs at least one channel");
        assert!(fmin.len() == n && fmax.len() == n, "bound shape mismatch");
        assert!(gains.iter().all(|&k| k > 0.0), "gains must be positive");
        assert!(
            fmin.iter().zip(&fmax).all(|(a, b)| a <= b),
            "fmin must not exceed fmax"
        );
        // Box constraints (Eq. (9)) replicated per control block — fixed
        // for the controller's lifetime, so build them once.
        let dim = n * cfg.lc;
        let mut lo = Vec::with_capacity(dim);
        let mut hi = Vec::with_capacity(dim);
        for _ in 0..cfg.lc {
            lo.extend_from_slice(&fmin);
            hi.extend_from_slice(&fmax);
        }
        let qp = QpProblem::new(Mat::zeros(dim, dim), vec![0.0; dim], lo, hi);
        MpcController {
            cfg,
            gains,
            fmax,
            r: vec![1.0; n],
            r_floor: 0.05,
            qp,
            ws: QpWorkspace::new(dim),
            backend,
            sb: StructuredBuffers {
                c: vec![0.0; cfg.lc],
                d: vec![0.0; dim],
                g: vec![0.0; dim],
                x: vec![0.0; dim],
                warm_u: vec![f64::NAN; cfg.lc],
            },
        }
    }

    pub fn backend(&self) -> MpcBackend {
        self.backend
    }

    /// Switch solvers in place (state is per-period, so this is safe at
    /// any period boundary).
    pub fn set_backend(&mut self, backend: MpcBackend) {
        self.backend = backend;
    }

    pub fn num_channels(&self) -> usize {
        self.gains.len()
    }

    /// Update the per-channel progress weights `Rⱼ` (allocator/§V-B).
    pub fn set_penalty_weights(&mut self, r: &[f64]) {
        assert_eq!(r.len(), self.gains.len());
        assert!(r.iter().all(|v| v.is_finite() && *v >= 0.0));
        self.r.copy_from_slice(r);
    }

    /// Update the model gains (e.g. from the RLS estimator).
    pub fn set_gains(&mut self, gains: &[f64]) {
        assert_eq!(gains.len(), self.gains.len());
        assert!(gains.iter().all(|&k| k > 0.0));
        self.gains.copy_from_slice(gains);
    }

    pub fn gains(&self) -> &[f64] {
        &self.gains
    }

    /// Reference trajectory (Eq. (7)): the power the controller wants at
    /// `x` periods ahead, given feedback `p_fb` and set point `target`.
    pub fn reference(&self, target: f64, p_fb: f64, x: usize) -> f64 {
        reference_at(target, p_fb, x, self.cfg.period, self.cfg.tau_r)
    }

    /// Solve one control period: measured feedback power `p_fb`
    /// (Eq. (6)), set point `target` (`P_batch`), current channel
    /// frequencies `f_now`.
    ///
    /// Steady-state hot path: both backends rebuild their problem data in
    /// place inside preallocated buffers, so a control period performs no
    /// matrix or iteration-buffer allocation (only the returned
    /// decision's two small `Vec`s are fresh). The structured default
    /// never materializes a Hessian at all — total per-period cost is
    /// O(n·Lc) assembly plus an O(n) root find per block, against the
    /// dense path's O((n·Lc)²) assembly and per-iteration matvecs.
    pub fn compute(&mut self, p_fb: f64, target: f64, f_now: &[f64]) -> MpcDecision {
        let _timer = telemetry::span("mpc_compute");
        let n = self.num_channels();
        assert_eq!(f_now.len(), n);
        let qp = match self.backend {
            MpcBackend::Structured => self.solve_structured(p_fb, target, f_now),
            MpcBackend::DenseFista => self.solve_dense(p_fb, target, f_now),
        };
        telemetry::histogram_observe("mpc_solve_iters", qp.iterations as f64);
        if !qp.converged {
            telemetry::counter_add("mpc_qp_fallback", 1);
        }
        let freqs: Vec<f64> = qp.x[..n].to_vec();
        let predicted_power = p_fb
            + self
                .gains
                .iter()
                .zip(freqs.iter().zip(f_now))
                .map(|(k, (y, f))| k * (y - f))
                .sum::<f64>();
        MpcDecision {
            freqs,
            predicted_power,
            qp,
        }
    }

    /// Structured hot path: assemble the Eq. (8) cost directly in its
    /// block-separable diagonal-plus-rank-one form — per-block coupling
    /// scalar `c_b`, shared gain vector `k`, diagonal `d`, linear `g` —
    /// and solve each block with the O(n) root find of
    /// [`crate::qp_structured`]. No dense Hessian, no row-sum Lipschitz
    /// bound, no dense matvecs.
    fn solve_structured(&mut self, p_fb: f64, target: f64, f_now: &[f64]) -> QpSolution {
        let _timer = telemetry::span("qp_solve_time");
        let n = self.num_channels();
        let (lp, lc) = (self.cfg.lp, self.cfg.lc);
        let q = self.cfg.q;
        let kf: f64 = self.gains.iter().zip(f_now).map(|(k, f)| k * f).sum();

        // Tracking terms: each prediction step adds q·(kᵀy_b − b_s)² to
        // its block, i.e. 2q·kkᵀ to the Hessian and −2q·b_s·k to g.
        // Summed per block that is c_b = 2q·steps_fed(b) on the rank-one
        // part and −2q·(Σ_s b_s)·k on the linear part.
        let sb = &mut self.sb;
        sb.g.fill(0.0);
        for b in 0..lc {
            sb.c[b] = 2.0 * q * steps_fed(lp, lc, b) as f64;
        }
        for step in 1..=lp {
            let b = step.min(lc) - 1;
            let reference = reference_at(target, p_fb, step, self.cfg.period, self.cfg.tau_r);
            let bn = reference - p_fb + kf;
            for j in 0..n {
                sb.g[b * n + j] += -2.0 * q * bn * self.gains[j];
            }
        }

        // Control-penalty terms: r_j·(y_{j,b} − fmax_j)² per block,
        // horizon-balanced by the share of tracking steps the block
        // feeds (see the dense path for why) — these are exactly the
        // diagonal d and the peak-pull part of g.
        for b in 0..lc {
            let share = steps_fed(lp, lc, b) as f64 / lp as f64;
            for j in 0..n {
                let rj = self.cfg.r_scale * self.r[j].max(self.r_floor) * share;
                sb.d[b * n + j] = 2.0 * rj;
                sb.g[b * n + j] += -2.0 * rj * self.fmax[j];
            }
        }

        let (evals, converged, kkt_residual) = solve_blocks_into_warm(
            &sb.c,
            &self.gains,
            &sb.d,
            &sb.g,
            &self.qp.lo,
            &self.qp.hi,
            &mut sb.x,
            1e-7,
            200,
            Some(&mut sb.warm_u),
        );
        let sol = QpSolution {
            x: sb.x.clone(),
            kkt_residual,
            iterations: evals,
            converged,
        };
        crate::qp::record_solve(&sol);
        sol
    }

    /// Dense reference path: materialize the Eq. (8) Hessian in the
    /// preallocated [`QpProblem`] and run FISTA in the controller's
    /// [`QpWorkspace`]. Kept for cross-validation against the structured
    /// backend (and for degenerate penalty configurations).
    fn solve_dense(&mut self, p_fb: f64, target: f64, f_now: &[f64]) -> QpSolution {
        let n = self.num_channels();
        let (lp, lc) = (self.cfg.lp, self.cfg.lc);

        // Only the lc diagonal n×n blocks of H are ever touched (tracking
        // couples channels within a block, never across blocks), so only
        // those entries need re-zeroing.
        let h = &mut self.qp.h;
        let g = &mut self.qp.g;
        g.fill(0.0);
        for b in 0..lc {
            for j in 0..n {
                for i in 0..n {
                    h[(b * n + j, b * n + i)] = 0.0;
                }
            }
        }

        // Tracking terms: q·(kᵀ y_b − b_n)² with
        // b_n = p_r(n) − p_fb + kᵀ f_now.
        let kf: f64 = self.gains.iter().zip(f_now).map(|(k, f)| k * f).sum();
        for step in 1..=lp {
            let b = step.min(lc) - 1; // control block feeding this step
            let reference = reference_at(target, p_fb, step, self.cfg.period, self.cfg.tau_r);
            let bn = reference - p_fb + kf;
            let q = self.cfg.q;
            for j in 0..n {
                let kj = self.gains[j];
                g[b * n + j] += -2.0 * q * bn * kj;
                for i in 0..n {
                    h[(b * n + j, b * n + i)] += 2.0 * q * kj * self.gains[i];
                }
            }
        }

        // Control-penalty terms: r_j·(y_{j,b} − fmax_j)² per block,
        // horizon-balanced: each block's penalty is scaled by the share
        // of tracking steps it feeds. Without this, the first block
        // (applied to the plant!) carries a full peak-pull against a
        // single tracking step and the loop settles with a bias toward
        // peak — visible on low-gain plants.
        for b in 0..lc {
            let share = steps_fed(lp, lc, b) as f64 / lp as f64;
            for j in 0..n {
                let rj = self.cfg.r_scale * self.r[j].max(self.r_floor) * share;
                h[(b * n + j, b * n + j)] += 2.0 * rj;
                g[b * n + j] += -2.0 * rj * self.fmax[j];
            }
        }

        self.qp.solve_with(&mut self.ws, 1e-7, 2_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy plant: power = Σ k_j f_j + base, with gains the controller
    /// over- or under-estimates by `gain_error`.
    struct Plant {
        k: Vec<f64>,
        base: f64,
        f: Vec<f64>,
    }

    impl Plant {
        fn power(&self) -> f64 {
            self.base + self.k.iter().zip(&self.f).map(|(k, f)| k * f).sum::<f64>()
        }
    }

    fn controller(n: usize) -> MpcController {
        MpcController::new(
            MpcConfig::paper_default(),
            vec![15.0; n],
            vec![0.2; n],
            vec![1.0; n],
        )
    }

    fn run_loop(
        ctrl: &mut MpcController,
        plant: &mut Plant,
        target: f64,
        steps: usize,
    ) -> Vec<f64> {
        let mut history = Vec::new();
        for _ in 0..steps {
            let p = plant.power();
            history.push(p);
            let d = ctrl.compute(p, target, &plant.f);
            plant.f = d.freqs;
        }
        history
    }

    #[test]
    fn converges_to_set_point_with_exact_model() {
        let mut ctrl = controller(4);
        let mut plant = Plant {
            k: vec![15.0; 4],
            base: 10.0,
            f: vec![1.0; 4],
        };
        // Target well inside the actuation range: 40 W of controllable
        // power (plant spans 10+4×3=22 .. 10+4×15=70).
        let hist = run_loop(&mut ctrl, &mut plant, 40.0, 60);
        let final_p = *hist.last().unwrap();
        // The Eq.(8) peak-pull penalty leaves a small designed offset
        // above the set point (the R term keeps tugging frequencies
        // toward peak); it must stay within a few percent.
        assert!((final_p - 40.0).abs() < 2.0, "final={final_p}");
        assert!(final_p >= 40.0 - 1e-9, "offset must be on the peak side");
        // Monotone-ish approach: last value closer than first.
        assert!((hist[0] - 40.0).abs() > (final_p - 40.0).abs());
    }

    #[test]
    fn tolerates_forty_percent_gain_error() {
        // §V-C: stability under bounded model error. Plant gains are 40%
        // above the model's.
        let mut ctrl = controller(4);
        let mut plant = Plant {
            k: vec![21.0; 4],
            base: 10.0,
            f: vec![1.0; 4],
        };
        let hist = run_loop(&mut ctrl, &mut plant, 50.0, 80);
        let final_p = *hist.last().unwrap();
        assert!((final_p - 50.0).abs() < 1.5, "final={final_p}");
        // No oscillatory blow-up anywhere in the tail.
        for w in hist[60..].windows(2) {
            assert!((w[1] - w[0]).abs() < 2.0);
        }
    }

    #[test]
    fn unreachable_target_saturates_at_peak() {
        let mut ctrl = controller(3);
        let mut plant = Plant {
            k: vec![15.0; 3],
            base: 0.0,
            f: vec![0.2; 3],
        };
        run_loop(&mut ctrl, &mut plant, 1_000.0, 40);
        for f in &plant.f {
            assert!((f - 1.0).abs() < 1e-6, "should pin at peak, got {f}");
        }
    }

    #[test]
    fn target_below_floor_saturates_at_fmin() {
        let mut ctrl = controller(3);
        let mut plant = Plant {
            k: vec![15.0; 3],
            base: 50.0,
            f: vec![1.0; 3],
        };
        run_loop(&mut ctrl, &mut plant, 0.0, 40);
        for f in &plant.f {
            assert!((f - 0.2).abs() < 1e-6, "should pin at floor, got {f}");
        }
    }

    #[test]
    fn progress_weights_bias_the_allocation() {
        // Two identical channels; channel 0 carries a big R (urgent job).
        // Under a tight budget, channel 0 must keep the higher frequency.
        let mut ctrl = controller(2);
        ctrl.set_penalty_weights(&[5.0, 0.1]);
        let mut plant = Plant {
            k: vec![15.0; 2],
            base: 0.0,
            f: vec![1.0; 2],
        };
        // Budget forces roughly half of max controllable power.
        run_loop(&mut ctrl, &mut plant, 15.0, 60);
        assert!(
            plant.f[0] > plant.f[1] + 0.2,
            "urgent channel must run faster: {:?}",
            plant.f
        );
        // And the total still tracks (looser band: the heavy R on the
        // urgent channel trades tracking for progress by design).
        assert!((plant.power() - 15.0).abs() < 3.5, "p={}", plant.power());
    }

    #[test]
    fn commands_respect_bounds_always() {
        let mut ctrl = controller(5);
        for &(p_fb, target) in &[(0.0, 500.0), (500.0, 0.0), (60.0, 60.0), (30.0, 90.0)] {
            let d = ctrl.compute(p_fb, target, &[0.5; 5]);
            for f in &d.freqs {
                assert!((0.2..=1.0).contains(f), "f={f} out of bounds");
            }
            assert!(d.qp.converged, "QP must converge");
        }
    }

    #[test]
    fn reference_trajectory_shape() {
        let ctrl = controller(1);
        // Eq. (7): starts at p_fb, approaches target exponentially.
        let r1 = ctrl.reference(100.0, 40.0, 0);
        assert!((r1 - 40.0).abs() < 1e-12);
        let r_far = ctrl.reference(100.0, 40.0, 100);
        assert!((r_far - 100.0).abs() < 1e-6);
        // Monotone.
        let mut prev = r1;
        for x in 1..20 {
            let r = ctrl.reference(100.0, 40.0, x);
            assert!(r > prev);
            prev = r;
        }
    }

    #[test]
    fn larger_tau_slows_the_approach() {
        let mut cfg = MpcConfig::paper_default();
        let ctrl_fast = MpcController::new(cfg, vec![15.0], vec![0.2], vec![1.0]);
        cfg.tau_r = 16.0;
        let ctrl_slow = MpcController::new(cfg, vec![15.0], vec![0.2], vec![1.0]);
        // After 4 periods the fast reference is much closer to target.
        let f = ctrl_fast.reference(100.0, 0.0, 4);
        let s = ctrl_slow.reference(100.0, 0.0, 4);
        assert!(f > s + 20.0, "fast={f} slow={s}");
    }

    #[test]
    fn zero_error_keeps_frequencies_steady() {
        // Already exactly on target with all channels mid-range: the
        // optimizer should not move much (only the peak-pull from R,
        // which the tracking term counters).
        let mut ctrl = controller(4);
        let f_now = vec![0.6; 4];
        let p_now = 15.0 * 0.6 * 4.0; // matches model prediction
        let d = ctrl.compute(p_now, p_now, &f_now);
        let moved: f64 = d.freqs.iter().zip(&f_now).map(|(a, b)| (a - b).abs()).sum();
        assert!(moved < 0.2, "moved {moved}");
    }

    #[test]
    fn backends_agree_on_single_periods() {
        // Same inputs through both solvers: full decision vectors within
        // 1e-6 and both KKT-certified.
        let mk = |backend| {
            MpcController::with_backend(
                MpcConfig::paper_default(),
                vec![15.0; 6],
                vec![0.2; 6],
                vec![1.0; 6],
                backend,
            )
        };
        let mut structured = mk(MpcBackend::Structured);
        let mut dense = mk(MpcBackend::DenseFista);
        assert_eq!(structured.backend(), MpcBackend::Structured);
        for &(p_fb, target) in &[(0.0, 500.0), (500.0, 0.0), (60.0, 60.0), (30.0, 90.0)] {
            let a = structured.compute(p_fb, target, &[0.5; 6]);
            let b = dense.compute(p_fb, target, &[0.5; 6]);
            assert!(a.qp.converged && b.qp.converged);
            assert!(a.qp.kkt_residual < 1e-6 && b.qp.kkt_residual < 1e-6);
            for (x, y) in a.qp.x.iter().zip(&b.qp.x) {
                assert!((x - y).abs() < 1e-6, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn backends_track_the_same_closed_loop_trajectory() {
        // Run the toy plant under each backend independently; the power
        // trajectories must stay together for the whole run (per-period
        // solver deviation is ≤ 1e-6 and the loop is contractive, so
        // differences must not accumulate).
        let run = |backend| {
            let mut ctrl = MpcController::with_backend(
                MpcConfig::paper_default(),
                vec![15.0; 4],
                vec![0.2; 4],
                vec![1.0; 4],
                backend,
            );
            ctrl.set_penalty_weights(&[2.0, 1.0, 0.3, 0.1]);
            let mut plant = Plant {
                k: vec![17.0; 4], // deliberate model error
                base: 10.0,
                f: vec![1.0; 4],
            };
            run_loop(&mut ctrl, &mut plant, 45.0, 60)
        };
        let hs = run(MpcBackend::Structured);
        let hd = run(MpcBackend::DenseFista);
        for (i, (a, b)) in hs.iter().zip(&hd).enumerate() {
            assert!((a - b).abs() < 1e-3, "step {i}: {a} vs {b}");
        }
    }

    #[test]
    fn warm_started_periods_cost_fewer_evals_at_steady_state() {
        // Repeating the same period: the carried coupling roots satisfy
        // the tolerance immediately, so the second solve is never more
        // expensive than the cold one and stays KKT-certified.
        let mut ctrl = controller(8);
        let d0 = ctrl.compute(60.0, 90.0, &[0.5; 8]);
        let d1 = ctrl.compute(60.0, 90.0, &[0.5; 8]);
        assert!(d0.qp.converged && d1.qp.converged);
        assert!(d1.qp.iterations <= d0.qp.iterations);
        assert!(d1.qp.kkt_residual < 1e-6);
        for (a, b) in d0.freqs.iter().zip(&d1.freqs) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn set_backend_switches_in_place() {
        let mut ctrl = controller(3);
        let a = ctrl.compute(30.0, 60.0, &[0.5; 3]);
        ctrl.set_backend(MpcBackend::DenseFista);
        assert_eq!(ctrl.backend(), MpcBackend::DenseFista);
        let b = ctrl.compute(30.0, 60.0, &[0.5; 3]);
        for (x, y) in a.freqs.iter().zip(&b.freqs) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "control horizon")]
    fn rejects_bad_horizons() {
        let mut cfg = MpcConfig::paper_default();
        cfg.lc = cfg.lp + 1;
        MpcController::new(cfg, vec![1.0], vec![0.0], vec![1.0]);
    }
}
