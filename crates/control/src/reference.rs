//! Exponential reference trajectories and settling-time estimates.
//!
//! Eq. (7) of the paper shapes the approach to a new set point as a
//! first-order exponential. The same algebra answers the configuration
//! question §V-C raises: the power load allocator must re-target
//! `P_batch` *slower* than the server power controller settles, so the
//! allocator period is derived from [`settling_time`] rather than chosen
//! blindly.

/// First-order exponential reference toward a set point (Eq. (7)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpReference {
    /// Time constant `τ_r`, seconds.
    pub tau: f64,
}

impl ExpReference {
    pub fn new(tau: f64) -> Self {
        assert!(tau > 0.0, "time constant must be positive");
        ExpReference { tau }
    }

    /// Value `x` seconds ahead when starting from `from` toward `target`.
    pub fn at(&self, target: f64, from: f64, x: f64) -> f64 {
        assert!(x >= 0.0);
        target - (-x / self.tau).exp() * (target - from)
    }

    /// Per-period decay factor `α = exp(−Ts/τ)` for period `ts`.
    pub fn alpha(&self, ts: f64) -> f64 {
        assert!(ts > 0.0);
        (-ts / self.tau).exp()
    }
}

/// Time for a first-order response with time constant `tau` to come
/// within `band` (fractional, e.g. 0.02 for 2%) of its set point:
/// `t = τ·ln(1/band)`.
pub fn settling_time(tau: f64, band: f64) -> f64 {
    assert!(tau > 0.0 && band > 0.0 && band < 1.0);
    tau * (1.0 / band).ln()
}

/// Settling time of a discrete closed loop with dominant pole `pole`
/// (periods): `n = ln(band)/ln(|pole|)`, rounded up. `None` if the loop
/// is not asymptotically stable.
pub fn discrete_settling_periods(pole: f64, band: f64) -> Option<usize> {
    assert!(band > 0.0 && band < 1.0);
    let mag = pole.abs();
    if mag >= 1.0 {
        return None;
    }
    if mag == 0.0 {
        return Some(1);
    }
    Some((band.ln() / mag.ln()).ceil() as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_hits_the_known_points() {
        let r = ExpReference::new(4.0);
        assert_eq!(r.at(100.0, 40.0, 0.0), 40.0);
        // One time constant closes 63.2% of the gap.
        let v = r.at(100.0, 40.0, 4.0);
        assert!((v - (100.0 - 60.0 * (-1.0_f64).exp())).abs() < 1e-12);
        assert!((r.at(100.0, 40.0, 1e3) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn alpha_matches_at() {
        let r = ExpReference::new(4.0);
        let a = r.alpha(1.0);
        // One period of decay == multiplying the gap by α.
        let direct = r.at(10.0, 0.0, 1.0);
        assert!((direct - (10.0 - 10.0 * a)).abs() < 1e-12);
    }

    #[test]
    fn settling_time_two_percent_is_about_four_tau() {
        let t = settling_time(4.0, 0.02);
        assert!((t - 4.0 * (50.0_f64).ln()).abs() < 1e-9);
        assert!(t > 15.0 && t < 16.0, "t={t}");
    }

    #[test]
    fn discrete_settling() {
        // Pole 0.38 (the paper-parameter loop): within 2% in ~5 periods.
        let n = discrete_settling_periods(0.38, 0.02).unwrap();
        assert!((4..=6).contains(&n), "n={n}");
        // Deadbeat settles immediately.
        assert_eq!(discrete_settling_periods(0.0, 0.02), Some(1));
        // Unstable loop never settles.
        assert_eq!(discrete_settling_periods(1.0, 0.02), None);
        assert_eq!(discrete_settling_periods(-1.3, 0.02), None);
    }

    #[test]
    fn allocator_period_dominates_settling_time() {
        // §V-C consistency check for the paper configuration: the 30 s
        // allocator period must exceed the controller's settling time.
        let pole = 0.38; // from stability::tests::params()
        let periods = discrete_settling_periods(pole, 0.02).unwrap();
        let controller_period_s = 1.0;
        assert!((periods as f64) * controller_period_s < 30.0);
    }
}
