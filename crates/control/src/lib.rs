//! # sprint-control — control-theory toolbox
//!
//! The feedback-control machinery SprintCon is built on, implemented from
//! scratch (no offline linalg/QP crates exist in this environment):
//!
//! * [`linalg`] — small dense matrices, Cholesky solves, spectral-radius
//!   estimation.
//! * [`qp`] — box-constrained convex QP: accelerated projected gradient
//!   plus a coordinate-descent reference solver, certified by the
//!   projected-KKT residual.
//! * [`qp_structured`] — O(n) solver for the diagonal-plus-rank-one
//!   blocks the MPC cost actually has; the production hot path.
//! * [`mpc`] — the Model Predictive Controller of §V-B: Eq. (7) reference
//!   trajectory, Eq. (8) cost, Eq. (9) box constraints, per-channel
//!   progress weights.
//! * [`pid`] — classical PID with anti-windup, for the MPC-vs-PID
//!   ablation.
//! * [`reference`](mod@reference) — exponential references and
//!   settling-time estimates
//!   (the §V-C allocator/controller timing contract).
//! * [`stability`] — closed-loop pole analysis under model error (§V-C).
//! * [`estimator`] — recursive least squares for online gain adaptation.
//! * [`kalman`] — scalar Kalman smoothing for noisy power measurements.

#![forbid(unsafe_code)]

pub mod estimator;
pub mod kalman;
pub mod linalg;
pub mod mpc;
pub mod pid;
pub mod qp;
pub mod qp_structured;
pub mod reference;
pub mod stability;

pub use estimator::{GainEstimator, Rls};
pub use kalman::Kalman1d;
pub use linalg::Mat;
pub use mpc::{MpcBackend, MpcConfig, MpcController, MpcDecision};
pub use pid::{Pid, PidConfig};
pub use qp::{QpProblem, QpSolution};
pub use qp_structured::{solve_blocks_into, solve_blocks_into_warm, BlockSolve, RankOneDiagQp};
pub use reference::{discrete_settling_periods, settling_time, ExpReference};
pub use stability::{
    max_gain_ratio, mimo_closed_loop, mimo_spectral_radius, scalar_pole, scalar_stable, LoopParams,
};
