//! Scalar Kalman filtering for power measurements.
//!
//! The rack power monitor is noisy (§V-A) and the UPS controller acts on
//! it deadbeat, so measurement noise flows straight into the duty-cycle
//! command. A steady-state scalar Kalman filter over a random-walk power
//! model gives the optimal smoothing for that pipeline: the filter's gain
//! balances how fast real power wanders (process variance) against how
//! noisy the monitor is (measurement variance). Exposed as an optional
//! stage in front of the UPS controller and benchmarked against raw
//! feed-through.

/// Scalar Kalman filter with a random-walk state model:
/// `x_{t+1} = x_t + w,  w ~ N(0, q)`;  `z_t = x_t + v,  v ~ N(0, r)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Kalman1d {
    /// Process variance `q` (how much real power moves per period²).
    pub q: f64,
    /// Measurement variance `r`.
    pub r: f64,
    /// State estimate.
    x: f64,
    /// Estimate variance.
    p: f64,
    initialized: bool,
}

impl Kalman1d {
    pub fn new(q: f64, r: f64) -> Self {
        assert!(q > 0.0 && r >= 0.0, "variances must be positive");
        Kalman1d {
            q,
            r,
            x: 0.0,
            p: 1e12, // diffuse prior: the first measurement is adopted
            initialized: false,
        }
    }

    /// Current estimate (0 before the first update).
    pub fn estimate(&self) -> f64 {
        self.x
    }

    /// Current estimate variance.
    pub fn variance(&self) -> f64 {
        self.p
    }

    /// The steady-state gain this (q, r) pair converges to:
    /// `K∞ = (−q + √(q² + 4qr)) / (2r)` for the random-walk model.
    pub fn steady_state_gain(&self) -> f64 {
        if self.r == 0.0 {
            return 1.0;
        }
        (-self.q + (self.q * self.q + 4.0 * self.q * self.r).sqrt()) / (2.0 * self.r)
    }

    /// Incorporate one measurement; returns the new estimate.
    pub fn update(&mut self, z: f64) -> f64 {
        telemetry::counter_add("kalman_updates", 1);
        if !self.initialized {
            // First sample after construction or a reset(): the diffuse
            // prior adopts the measurement wholesale.
            telemetry::counter_add("kalman_reinits", 1);
            self.x = z;
            self.p = self.r;
            self.initialized = true;
            return self.x;
        }
        // Predict.
        let p_pred = self.p + self.q;
        // Update.
        let k = if p_pred + self.r == 0.0 {
            1.0
        } else {
            p_pred / (p_pred + self.r)
        };
        self.x += k * (z - self.x);
        self.p = (1.0 - k) * p_pred;
        self.x
    }

    /// Reset to the uninitialized state.
    pub fn reset(&mut self) {
        self.x = 0.0;
        self.p = 1e12;
        self.initialized = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise(seed: &mut u64) -> f64 {
        // Cheap deterministic ~N(0,1): sum of 12 uniforms − 6.
        let mut s = 0.0;
        for _ in 0..12 {
            *seed ^= *seed << 13;
            *seed ^= *seed >> 7;
            *seed ^= *seed << 17;
            s += (*seed >> 11) as f64 / (1u64 << 53) as f64;
        }
        s - 6.0
    }

    #[test]
    fn adopts_first_measurement() {
        let mut f = Kalman1d::new(1.0, 100.0);
        assert_eq!(f.update(3456.0), 3456.0);
    }

    #[test]
    fn converges_on_a_constant_signal() {
        let mut f = Kalman1d::new(0.5, 400.0);
        let mut seed = 99u64;
        let truth = 3200.0;
        let mut last = 0.0;
        for _ in 0..500 {
            last = f.update(truth + 20.0 * noise(&mut seed));
        }
        assert!((last - truth).abs() < 15.0, "est={last}");
        // Variance settles near the algebraic steady state
        // p∞ = K∞·r for the random-walk filter.
        let k = f.steady_state_gain();
        assert!((f.variance() - k * f.r).abs() < 0.05 * k * f.r);
    }

    #[test]
    fn filtering_beats_raw_measurements_in_rms() {
        let mut f = Kalman1d::new(1.0, 900.0); // sd 30 W noise
        let mut seed = 7u64;
        let mut raw_se = 0.0;
        let mut filt_se = 0.0;
        let n = 5000;
        for k in 0..n {
            // Slowly wandering truth (rate ≪ the filter's tracking rate,
            // which is where smoothing pays off).
            let truth = 3400.0 + 150.0 * ((k as f64) * 0.002).sin();
            let z = truth + 30.0 * noise(&mut seed);
            let est = f.update(z);
            raw_se += (z - truth).powi(2);
            filt_se += (est - truth).powi(2);
        }
        let (raw, filt) = ((raw_se / n as f64).sqrt(), (filt_se / n as f64).sqrt());
        assert!(
            filt < raw * 0.6,
            "filter must cut RMS well below raw: {filt:.1} vs {raw:.1}"
        );
    }

    #[test]
    fn tracks_steps_with_bounded_lag() {
        let mut f = Kalman1d::new(25.0, 400.0);
        for _ in 0..100 {
            f.update(3200.0);
        }
        // Step to 4000: the filter must cover 90% of the step within a
        // few dozen periods for this q/r.
        let mut steps = 0;
        loop {
            f.update(4000.0);
            steps += 1;
            if f.estimate() > 3920.0 {
                break;
            }
            assert!(steps < 60, "too slow: est={}", f.estimate());
        }
    }

    #[test]
    fn steady_state_gain_limits() {
        // r → 0: trust measurements fully.
        assert!((Kalman1d::new(1.0, 0.0).steady_state_gain() - 1.0).abs() < 1e-12);
        // Huge r relative to q: tiny gain.
        assert!(Kalman1d::new(0.01, 1e6).steady_state_gain() < 0.01);
        // Gain grows with process variance.
        let slow = Kalman1d::new(0.1, 100.0).steady_state_gain();
        let fast = Kalman1d::new(10.0, 100.0).steady_state_gain();
        assert!(fast > slow);
    }

    #[test]
    fn reset_restores_diffuse_prior() {
        let mut f = Kalman1d::new(1.0, 100.0);
        f.update(5000.0);
        f.update(5000.0);
        f.reset();
        assert_eq!(f.update(100.0), 100.0, "first post-reset sample adopted");
    }
}
