//! Discrete PID controller with anti-windup.
//!
//! Not part of SprintCon proper — the paper chooses MPC for the server
//! power controller — but the ablation benches (`ablation_mpc_vs_pid`)
//! need a credible classical alternative to quantify that choice, and the
//! UPS power controller's deadbeat law is easiest to sanity-check against
//! a PI loop.

/// PID gains and limits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PidConfig {
    pub kp: f64,
    pub ki: f64,
    pub kd: f64,
    /// Output clamp (also bounds the integrator via back-calculation).
    pub out_min: f64,
    pub out_max: f64,
    /// Control period, seconds.
    pub period: f64,
}

/// A discrete PID controller.
#[derive(Debug, Clone)]
pub struct Pid {
    pub cfg: PidConfig,
    integral: f64,
    last_error: Option<f64>,
}

impl Pid {
    pub fn new(cfg: PidConfig) -> Self {
        assert!(cfg.period > 0.0, "PID period must be positive");
        assert!(cfg.out_min <= cfg.out_max);
        Pid {
            cfg,
            integral: 0.0,
            last_error: None,
        }
    }

    /// Reset dynamic state (integrator, derivative history).
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.last_error = None;
    }

    /// One control period: returns the clamped output for the given
    /// set point and measurement.
    pub fn step(&mut self, set_point: f64, measurement: f64) -> f64 {
        let e = set_point - measurement;
        let dt = self.cfg.period;
        let d = match self.last_error {
            Some(prev) => (e - prev) / dt,
            None => 0.0,
        };
        self.last_error = Some(e);
        let tentative_i = self.integral + e * dt;
        let raw = self.cfg.kp * e + self.cfg.ki * tentative_i + self.cfg.kd * d;
        let clamped = raw.clamp(self.cfg.out_min, self.cfg.out_max);
        // Conditional integration anti-windup: only integrate when not
        // pushing further into saturation.
        let saturated_high = raw > self.cfg.out_max && e > 0.0;
        let saturated_low = raw < self.cfg.out_min && e < 0.0;
        if !saturated_high && !saturated_low {
            self.integral = tentative_i;
        }
        clamped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid() -> Pid {
        // Plant gain in these tests is 60 W per unit output; the discrete
        // proportional loop needs kp·gain < 1.
        Pid::new(PidConfig {
            kp: 0.005,
            ki: 0.01,
            kd: 0.0,
            out_min: 0.2,
            out_max: 1.0,
            period: 1.0,
        })
    }

    /// First-order plant: power = gain·u + base.
    fn closed_loop(mut pid: Pid, gain: f64, base: f64, target: f64, steps: usize) -> Vec<f64> {
        let mut u = 0.6;
        let mut hist = Vec::new();
        for _ in 0..steps {
            let p = gain * u + base;
            hist.push(p);
            u = pid.step(target, p);
        }
        hist
    }

    #[test]
    fn converges_on_static_plant() {
        let hist = closed_loop(pid(), 60.0, 10.0, 50.0, 200);
        let p = *hist.last().unwrap();
        assert!((p - 50.0).abs() < 0.5, "final={p}");
    }

    #[test]
    fn integrator_removes_steady_state_error() {
        // Proportional-only would leave an offset; PI must not.
        let mut cfg = pid().cfg;
        cfg.kp = 0.001;
        let hist = closed_loop(Pid::new(cfg), 60.0, 10.0, 45.0, 2_000);
        assert!((hist.last().unwrap() - 45.0).abs() < 0.2);
    }

    #[test]
    fn output_always_clamped() {
        let mut p = pid();
        for target in [-1e6, 0.0, 1e6] {
            let u = p.step(target, 50.0);
            assert!((0.2..=1.0).contains(&u), "u={u}");
        }
    }

    #[test]
    fn anti_windup_recovers_quickly() {
        let mut p = pid();
        // Saturate high for a long time.
        for _ in 0..500 {
            p.step(1e5, 0.0);
        }
        // Set point swings low: without anti-windup the integrator would
        // take hundreds of steps to unwind; with it, the output drops to
        // the floor within a few steps.
        let mut steps_to_floor = 0;
        for k in 1..=50 {
            let u = p.step(-1e5, 0.0);
            if u <= 0.2 + 1e-9 {
                steps_to_floor = k;
                break;
            }
        }
        assert!(
            (1..=5).contains(&steps_to_floor),
            "took {steps_to_floor} steps"
        );
    }

    #[test]
    fn reset_clears_state() {
        let mut p = pid();
        for _ in 0..100 {
            p.step(100.0, 0.0);
        }
        p.reset();
        let fresh = pid().step(10.0, 0.0);
        assert!((p.step(10.0, 0.0) - fresh).abs() < 1e-12);
    }

    #[test]
    fn derivative_term_reacts_to_error_slope() {
        let mut cfg = pid().cfg;
        cfg.kp = 0.0;
        cfg.ki = 0.0;
        cfg.kd = 1.0;
        cfg.out_min = -10.0;
        cfg.out_max = 10.0;
        let mut p = Pid::new(cfg);
        p.step(0.0, 0.0); // establish history at e = 0
        let u = p.step(0.0, -3.0); // error jumps to +3 → de/dt = 3
        assert!((u - 3.0).abs() < 1e-12);
    }
}
