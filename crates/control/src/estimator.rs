//! Recursive least-squares (RLS) estimation of power-model parameters.
//!
//! The controller's linear model (Eq. (2)) is calibrated offline, but the
//! true gains drift with utilization, temperature, and job mix. An RLS
//! estimator with exponential forgetting lets SprintCon refresh `K` (and
//! the offset `C`) online from the `(Δf, Δp)` pairs every control period
//! already produces — the adaptive-MPC extension exercised by the
//! ablation benches.

use crate::linalg::Mat;

/// RLS estimator for `y = θᵀx` with exponential forgetting.
#[derive(Debug, Clone)]
pub struct Rls {
    /// Current parameter estimate θ.
    theta: Vec<f64>,
    /// Inverse covariance P.
    p: Mat,
    /// Forgetting factor λ ∈ (0, 1]; 1 = infinite memory.
    pub lambda: f64,
    /// Updates performed.
    pub updates: usize,
}

impl Rls {
    /// Start from an initial guess with confidence `1/p0` (large `p0` =
    /// weak prior, fast early adaptation).
    pub fn new(theta0: Vec<f64>, p0: f64, lambda: f64) -> Self {
        assert!(!theta0.is_empty());
        assert!(p0 > 0.0, "prior covariance must be positive");
        assert!(lambda > 0.0 && lambda <= 1.0, "forgetting factor in (0,1]");
        let n = theta0.len();
        Rls {
            theta: theta0,
            p: Mat::identity(n).scale(p0),
            lambda,
            updates: 0,
        }
    }

    pub fn theta(&self) -> &[f64] {
        &self.theta
    }

    pub fn dim(&self) -> usize {
        self.theta.len()
    }

    /// Predicted output for regressor `x`.
    pub fn predict(&self, x: &[f64]) -> f64 {
        crate::linalg::dot(&self.theta, x)
    }

    /// Incorporate one observation `(x, y)`; returns the prediction error
    /// before the update (the innovation).
    pub fn update(&mut self, x: &[f64], y: f64) -> f64 {
        let n = self.dim();
        assert_eq!(x.len(), n);
        let innovation = y - self.predict(x);
        // K = P·x / (λ + xᵀP·x)
        let px = self.p.matvec(x);
        let denom = self.lambda + crate::linalg::dot(x, &px);
        let k: Vec<f64> = px.iter().map(|v| v / denom).collect();
        for (t, ki) in self.theta.iter_mut().zip(&k) {
            *t += ki * innovation;
        }
        // P ← (P − K·xᵀP) / λ
        let xp = self.p.matvec_t(x); // xᵀP (row), P symmetric ⇒ = P·x
        for (i, ki) in k.iter().enumerate() {
            for (j, xpj) in xp.iter().enumerate() {
                self.p[(i, j)] = (self.p[(i, j)] - ki * xpj) / self.lambda;
            }
        }
        self.updates += 1;
        innovation
    }
}

/// Convenience wrapper: estimate the scalar aggregate power gain `κ` and
/// offset drift from `(Δf, Δp)` pairs — the Eq. (4) difference model.
#[derive(Debug, Clone)]
pub struct GainEstimator {
    rls: Rls,
    /// Clamp range keeping the estimate physically sane.
    pub kappa_min: f64,
    pub kappa_max: f64,
}

impl GainEstimator {
    pub fn new(kappa0: f64, kappa_min: f64, kappa_max: f64) -> Self {
        assert!(kappa_min > 0.0 && kappa_min <= kappa0 && kappa0 <= kappa_max);
        GainEstimator {
            // θ = [κ, bias]; regressor [Δf, 1].
            rls: Rls::new(vec![kappa0, 0.0], 100.0, 0.98),
            kappa_min,
            kappa_max,
        }
    }

    /// Feed one control period's actuation/response pair.
    pub fn observe(&mut self, delta_f: f64, delta_p: f64) {
        // Skip informationless samples; RLS with forgetting diverges on a
        // long run of zero regressors.
        if delta_f.abs() < 1e-6 {
            return;
        }
        self.rls.update(&[delta_f, 1.0], delta_p);
    }

    /// Current clamped gain estimate.
    pub fn kappa(&self) -> f64 {
        self.rls.theta()[0].clamp(self.kappa_min, self.kappa_max)
    }

    pub fn updates(&self) -> usize {
        self.rls.updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_model() {
        let mut rls = Rls::new(vec![0.0, 0.0], 1000.0, 1.0);
        // y = 3x₁ − 2x₂, noiseless.
        let pts = [
            ([1.0, 0.0], 3.0),
            ([0.0, 1.0], -2.0),
            ([1.0, 1.0], 1.0),
            ([2.0, -1.0], 8.0),
            ([0.5, 0.5], 0.5),
        ];
        // Cycle the data enough for the (weak) prior to wash out.
        for _ in 0..200 {
            for (x, y) in pts {
                rls.update(&x, y);
            }
        }
        assert!((rls.theta()[0] - 3.0).abs() < 1e-4);
        assert!((rls.theta()[1] + 2.0).abs() < 1e-4);
        // Prediction error now ~0:  3·4 − 2·4 = 4.
        assert!((rls.predict(&[4.0, 4.0]) - 4.0).abs() < 1e-4);
    }

    #[test]
    fn forgetting_tracks_a_changing_gain() {
        let mut est = GainEstimator::new(40.0, 5.0, 300.0);
        // Phase 1: true gain 60.
        let phase = |est: &mut GainEstimator, kappa: f64| {
            for i in 0..200 {
                let df = 0.1 * ((i as f64) * 0.7).sin();
                est.observe(df, kappa * df);
            }
        };
        phase(&mut est, 60.0);
        assert!((est.kappa() - 60.0).abs() < 2.0, "kappa={}", est.kappa());
        // Phase 2: plant changes to 90; the estimator follows.
        phase(&mut est, 90.0);
        assert!((est.kappa() - 90.0).abs() < 3.0, "kappa={}", est.kappa());
    }

    #[test]
    fn noisy_observations_average_out() {
        let mut est = GainEstimator::new(50.0, 5.0, 300.0);
        let mut noise_state = 12345u64;
        let mut noise = || {
            noise_state ^= noise_state << 13;
            noise_state ^= noise_state >> 7;
            noise_state ^= noise_state << 17;
            ((noise_state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 4.0
        };
        for i in 0..500 {
            let df = 0.15 * ((i as f64) * 1.3).sin();
            est.observe(df, 70.0 * df + noise());
        }
        assert!((est.kappa() - 70.0).abs() < 6.0, "kappa={}", est.kappa());
    }

    #[test]
    fn zero_actuation_is_ignored() {
        let mut est = GainEstimator::new(50.0, 5.0, 300.0);
        for _ in 0..1000 {
            est.observe(0.0, 3.0); // pure disturbance, no excitation
        }
        assert_eq!(est.updates(), 0);
        assert_eq!(est.kappa(), 50.0);
    }

    #[test]
    fn clamping_keeps_estimates_physical() {
        let mut est = GainEstimator::new(50.0, 20.0, 100.0);
        // Adversarial data implying a negative gain.
        for i in 0..100 {
            let df = 0.1 * if i % 2 == 0 { 1.0 } else { -1.0 };
            est.observe(df, -200.0 * df);
        }
        assert_eq!(est.kappa(), 20.0);
    }

    #[test]
    fn innovation_shrinks_with_learning() {
        let mut rls = Rls::new(vec![0.0], 100.0, 1.0);
        let first = rls.update(&[1.0], 5.0).abs();
        let mut last = first;
        for _ in 0..20 {
            last = rls.update(&[1.0], 5.0).abs();
        }
        assert!(last < first * 1e-3);
    }
}
