//! Closed-loop stability analysis (§V-C).
//!
//! The paper claims MPC gives a theoretical stability guarantee as long
//! as modeling errors stay within allowed ranges: derive the closed-loop
//! system from the optimal `ΔF(t)` and the gain matrix characterizing the
//! error, and check that all poles lie inside the unit circle. This
//! module does that derivation for the unconstrained MPC law (stability
//! of the constrained controller follows on the region where constraints
//! are inactive; saturation only ever *reduces* the loop gain here).
//!
//! Two levels:
//!
//! * [`scalar_pole`] — the aggregate (rack-total) loop collapses to a
//!   scalar system `p(t+1) = p(t) + γ·κ·Δf(t)` where `γ` is the ratio of
//!   true plant gain to model gain; the closed-loop pole has the closed
//!   form `1 − γ·L`. Gives the exact allowed gain-error interval.
//! * [`mimo_closed_loop`] — the full `[p; f]` state matrix for `N`
//!   channels with per-channel gain errors; its spectral radius is
//!   checked numerically.

use crate::linalg::Mat;

/// Parameters of the analysis (mirrors [`crate::mpc::MpcConfig`] with
/// `Lc = 1`, the case with a closed form).
#[derive(Debug, Clone, Copy)]
pub struct LoopParams {
    /// Prediction horizon.
    pub lp: usize,
    /// Tracking weight.
    pub q: f64,
    /// Control penalty weight (already scaled).
    pub r: f64,
    /// Model gain κ (watts per unit frequency), aggregate.
    pub kappa: f64,
    /// Reference decay per period, `α = exp(−Ts/τ_r)` ∈ (0, 1).
    pub alpha: f64,
}

impl LoopParams {
    fn validate(&self) {
        assert!(self.lp >= 1);
        assert!(self.q > 0.0 && self.r >= 0.0 && self.kappa > 0.0);
        assert!((0.0..1.0).contains(&self.alpha), "alpha must be in [0,1)");
    }

    /// The unconstrained first-move feedback gain `L` such that
    /// `Δf = L·(target − p)/κ + (peak-pull term)`:
    ///
    /// `L = q·κ²·(Lp − S) / (q·κ²·Lp + r)` with `S = Σₙ₌₁..Lp αⁿ`.
    pub fn feedback_gain(&self) -> f64 {
        self.validate();
        let lp = self.lp as f64;
        let s: f64 = (1..=self.lp).map(|n| self.alpha.powi(n as i32)).sum();
        self.q * self.kappa * self.kappa * (lp - s)
            / (self.q * self.kappa * self.kappa * lp + self.r)
    }
}

/// Closed-loop pole of the aggregate loop when the true plant gain is
/// `gamma` times the model gain: `z = 1 − γ·L`.
pub fn scalar_pole(params: LoopParams, gamma: f64) -> f64 {
    assert!(gamma > 0.0, "plant/model gain ratio must be positive");
    1.0 - gamma * params.feedback_gain()
}

/// Is the aggregate loop stable for gain ratio `gamma`?
pub fn scalar_stable(params: LoopParams, gamma: f64) -> bool {
    scalar_pole(params, gamma).abs() < 1.0
}

/// The allowed gain-error interval `(0, γ_max)` within which the
/// aggregate loop is guaranteed stable: `γ_max = 2 / L`.
pub fn max_gain_ratio(params: LoopParams) -> f64 {
    2.0 / params.feedback_gain()
}

/// Build the reduced closed-loop state matrix for `N` channels with
/// `Lc = 1`.
///
/// The unconstrained MPC law solves `H·y = −g` with
/// `H = 2q·Lp·kkᵀ + 2·diag(r)` and `g` linear in `p` and `f`, giving
/// `f⁺ = G_f·f + g_p·(T − p) + const` and `p⁺ = p + k_plantᵀ·(f⁺ − f)`.
///
/// The raw `[p; f]` state carries a *structurally conserved* coordinate:
/// `p − k_plantᵀ·f` never changes (it is the constant term `C` of
/// Eq. (2)), so the full matrix always has an eigenvalue exactly at 1
/// that is not an instability. Eliminating it (`p = k_plantᵀ·f + c`)
/// leaves the `N×N` dynamics
///
/// ```text
/// f⁺ = (G_f − g_p·k_plantᵀ)·f + const
/// ```
///
/// whose spectral radius decides stability of the actual loop.
pub fn mimo_closed_loop(
    k_model: &[f64],
    k_plant: &[f64],
    r: &[f64],
    lp: usize,
    q: f64,
    alpha: f64,
) -> Mat {
    let n = k_model.len();
    assert!(n > 0 && k_plant.len() == n && r.len() == n);
    assert!((0.0..1.0).contains(&alpha));
    assert!(
        r.iter().all(|&v| v > 0.0),
        "need strictly positive penalties"
    );
    let lpf = lp as f64;
    let s: f64 = (1..=lp).map(|m| alpha.powi(m as i32)).sum();

    // H = 2q·Lp·kkᵀ + 2·diag(r)
    let mut h = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            h[(i, j)] = 2.0 * q * lpf * k_model[i] * k_model[j];
        }
        h[(i, i)] += 2.0 * r[i];
    }
    // y = H⁻¹·(2q·Lp·(kᵀf)·k + 2q·(Lp−S)·(T−p)·k + 2·r∘fmax)
    //   = G_f·f + g_p·(T−p) + const
    // Columns of G_f: G_f·e_j = 2q·Lp·k_j · H⁻¹k.
    let hinv_k = h.solve_spd(k_model).expect("H is SPD");
    let g_p: Vec<f64> = hinv_k.iter().map(|v| 2.0 * q * (lpf - s) * v).collect();

    // A = G_f − g_p·k_plantᵀ, with G_f[i][j] = 2q·Lp·k_model[j]·H⁻¹k[i].
    let mut a = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            a[(i, j)] = 2.0 * q * lpf * k_model[j] * hinv_k[i] - g_p[i] * k_plant[j];
        }
    }
    a
}

/// Spectral radius of the MIMO closed loop (numerical).
pub fn mimo_spectral_radius(
    k_model: &[f64],
    k_plant: &[f64],
    r: &[f64],
    lp: usize,
    q: f64,
    alpha: f64,
) -> f64 {
    mimo_closed_loop(k_model, k_plant, r, lp, q, alpha).spectral_radius_estimate(400)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> LoopParams {
        LoopParams {
            lp: 8,
            q: 1.0,
            r: 8.0,
            kappa: 60.0,
            alpha: (-1.0_f64 / 4.0).exp(),
        }
    }

    #[test]
    fn nominal_loop_is_stable() {
        let p = params();
        assert!(scalar_stable(p, 1.0));
        let pole = scalar_pole(p, 1.0);
        assert!((0.0..1.0).contains(&pole), "pole={pole}");
    }

    #[test]
    fn gain_margin_is_generous() {
        // §V-C: stability for bounded modeling error. With the paper
        // parameters the loop tolerates the plant gain being at least 2×
        // the model's.
        let p = params();
        let gmax = max_gain_ratio(p);
        assert!(gmax > 2.0, "gamma_max={gmax}");
        assert!(scalar_stable(p, 2.0));
        // And instability does eventually occur beyond the bound.
        assert!(!scalar_stable(p, gmax + 0.01));
        assert!(scalar_stable(p, gmax - 0.01));
    }

    #[test]
    fn feedback_gain_monotone_in_r() {
        // Heavier control penalty → softer feedback → pole closer to 1.
        let mut p = params();
        let l_small_r = p.feedback_gain();
        p.r = 800.0;
        let l_big_r = p.feedback_gain();
        assert!(l_big_r < l_small_r);
        assert!(scalar_pole(p, 1.0) > scalar_pole(params(), 1.0));
    }

    #[test]
    fn slower_reference_softens_the_loop() {
        let mut p = params();
        let fast = p.feedback_gain();
        p.alpha = (-1.0_f64 / 16.0).exp(); // larger τ_r
        let slow = p.feedback_gain();
        assert!(slow < fast, "slow α must reduce the loop gain");
    }

    #[test]
    fn mimo_nominal_stable() {
        let k = vec![15.0, 12.0, 18.0, 15.0];
        let r = vec![8.0; 4];
        let rho = mimo_spectral_radius(&k, &k, &r, 8, 1.0, (-0.25_f64).exp());
        assert!(rho < 1.0, "rho={rho}");
    }

    #[test]
    fn mimo_tolerates_heterogeneous_gain_errors() {
        // Plant gains off by −30%…+50% per channel: still stable.
        let km = vec![15.0, 12.0, 18.0, 15.0];
        let kp = vec![15.0 * 1.5, 12.0 * 0.7, 18.0 * 1.2, 15.0 * 0.9];
        let r = vec![8.0; 4];
        let rho = mimo_spectral_radius(&km, &kp, &r, 8, 1.0, (-0.25_f64).exp());
        assert!(rho < 1.0, "rho={rho}");
    }

    #[test]
    fn mimo_extreme_gain_error_destabilizes() {
        let km = vec![15.0; 3];
        let kp = vec![15.0 * 40.0; 3]; // plant 40× hotter than the model
        let r = vec![1.0; 3];
        let rho = mimo_spectral_radius(&km, &kp, &r, 8, 1.0, (-0.25_f64).exp());
        assert!(rho > 1.0, "rho={rho}");
    }

    #[test]
    fn scalar_and_mimo_agree_for_one_channel() {
        // The reduced one-channel matrix is the scalar
        // f⁺ = (G_f − g_p·κ)·f + const, whose pole equals the scalar-loop
        // pole up to the tiny G_f < 1 correction.
        let p = params();
        let rho = mimo_spectral_radius(&[p.kappa], &[p.kappa], &[p.r], p.lp, p.q, p.alpha);
        let pole = scalar_pole(p, 1.0).abs();
        assert!((rho - pole).abs() < 0.01, "rho={rho} pole={pole}");
    }

    #[test]
    fn mimo_gain_error_moves_poles_like_scalar_prediction() {
        // Uniform plant-gain scaling γ on every channel shifts the
        // dominant pole to ≈ 1 − γ·L, as in the scalar analysis.
        let p = params();
        for gamma in [0.5, 1.0, 1.5, 2.0] {
            let km = vec![p.kappa / 2.0; 2]; // two channels summing to κ
            let kp: Vec<f64> = km.iter().map(|k| k * gamma).collect();
            let rho = mimo_spectral_radius(&km, &kp, &[p.r / 2.0; 2], p.lp, p.q, p.alpha);
            let predicted = scalar_pole(p, gamma).abs();
            assert!(
                (rho - predicted).abs() < 0.05,
                "gamma={gamma}: rho={rho} predicted={predicted}"
            );
        }
    }
}
