//! Property-based tests for the control-theory toolbox.

use proptest::prelude::*;
use sprint_control::kalman::Kalman1d;
use sprint_control::linalg::Mat;
use sprint_control::mpc::{MpcBackend, MpcConfig, MpcController};
use sprint_control::qp::QpProblem;
use sprint_control::qp_structured::RankOneDiagQp;
use sprint_control::reference::ExpReference;
use sprint_control::stability::{scalar_pole, LoopParams};

fn spd_from(entries: &[f64], n: usize) -> Mat {
    let mut a = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            a[(i, j)] = entries[(i * n + j) % entries.len()].clamp(-1.0, 1.0);
        }
    }
    let mut m = &a + &a.transpose();
    for i in 0..n {
        m[(i, i)] += 2.0 * n as f64 + 1.0;
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FISTA and coordinate descent agree on random box QPs, both produce
    /// feasible points, and the reported objective is a true minimum
    /// against random feasible perturbations.
    #[test]
    fn qp_solvers_agree_and_minimize(
        entries in proptest::collection::vec(-1.0f64..1.0, 16),
        g in proptest::collection::vec(-5.0f64..5.0, 4),
        lo_v in -2.0f64..0.0,
        hi_v in 0.1f64..2.0,
        probes in proptest::collection::vec(0.0f64..1.0, 8),
    ) {
        let n = 4;
        let h = spd_from(&entries, n);
        let p = QpProblem::new(h, g, vec![lo_v; n], vec![hi_v; n]);
        let a = p.solve(1e-9, 50_000);
        let b = p.solve_coordinate_descent(1e-9, 50_000);
        prop_assert!(a.converged && b.converged);
        for (x, y) in a.x.iter().zip(&b.x) {
            prop_assert!((lo_v..=hi_v).contains(x));
            prop_assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
        let fa = p.objective(&a.x);
        // Random feasible points never beat the solver.
        for chunk in probes.chunks(n) {
            if chunk.len() < n { break; }
            let cand: Vec<f64> = chunk.iter().map(|t| lo_v + t * (hi_v - lo_v)).collect();
            prop_assert!(p.objective(&cand) >= fa - 1e-7);
        }
    }

    /// The structured diagonal-plus-rank-one solver agrees with exact
    /// coordinate descent on the materialized dense Hessian, across
    /// random gains (both signs), weights, and crossed-activity bounds —
    /// including the all-pinned (lo = hi) and effectively-unconstrained
    /// (huge box) corners, steered by `pin`/`widen`.
    #[test]
    fn structured_solver_agrees_with_coordinate_descent(
        c in 0.0f64..5.0,
        k in proptest::collection::vec(-6.0f64..6.0, 5),
        d in proptest::collection::vec(0.05f64..5.0, 5),
        g in proptest::collection::vec(-8.0f64..8.0, 5),
        lo in proptest::collection::vec(-2.0f64..0.5, 5),
        width in proptest::collection::vec(0.0f64..2.0, 5),
        pin in proptest::bool::ANY,
        widen in proptest::bool::ANY,
    ) {
        let n = 5;
        let hi: Vec<f64> = if pin {
            lo.clone() // every coordinate pinned at its bound
        } else if widen {
            lo.iter().map(|_| 1e6).collect() // effectively unconstrained above
        } else {
            lo.iter().zip(&width).map(|(l, w)| l + w).collect()
        };
        let lo = if widen { vec![-1e6; n] } else { lo };
        let block = RankOneDiagQp { c, k: &k, d: &d, g: &g, lo: &lo, hi: &hi };
        let mut y = vec![0.0; n];
        let s = block.solve_into(&mut y, 1e-9, 300);
        prop_assert!(s.converged);
        prop_assert!(block.kkt_residual(&y) < 1e-7);
        let p = QpProblem::new(block.dense_hessian(), g.clone(), lo.clone(), hi.clone());
        let reference = p.solve_coordinate_descent(1e-10, 100_000);
        prop_assert!(reference.converged);
        for (a, b) in y.iter().zip(&reference.x) {
            prop_assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    /// Warm-starting the structured solver never regresses the KKT
    /// certificate: for a random block solved cold, then re-solved from
    /// an arbitrarily shifted hint (in-bracket, stale, or wildly out of
    /// range), the warm solve converges, costs no more evaluations than
    /// bisection would allow, meets the same 1e-7 certificate, and lands
    /// on the cold solution.
    #[test]
    fn warm_started_structured_solver_keeps_kkt_certificate(
        c in 0.1f64..5.0,
        k in proptest::collection::vec(-6.0f64..6.0, 5),
        d in proptest::collection::vec(0.05f64..5.0, 5),
        g in proptest::collection::vec(-8.0f64..8.0, 5),
        lo in proptest::collection::vec(-2.0f64..0.5, 5),
        width in proptest::collection::vec(0.1f64..2.0, 5),
        hint_shift in -50.0f64..50.0,
    ) {
        let hi: Vec<f64> = lo.iter().zip(&width).map(|(l, w)| l + w).collect();
        let block = RankOneDiagQp { c, k: &k, d: &d, g: &g, lo: &lo, hi: &hi };
        let mut y_cold = vec![0.0; 5];
        let cold = block.solve_into(&mut y_cold, 1e-7, 300);
        prop_assert!(cold.converged);
        prop_assert!(block.kkt_residual(&y_cold) < 1e-7);
        let mut y_warm = vec![0.0; 5];
        let warm = block.solve_into_warm(&mut y_warm, 1e-7, 300, Some(cold.u + hint_shift));
        prop_assert!(warm.converged);
        prop_assert!(block.kkt_residual(&y_warm) < 1e-7, "warm KKT regressed");
        for (a, b) in y_cold.iter().zip(&y_warm) {
            prop_assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
        // Exact-root hint: one evaluation per solve, certificate intact.
        let mut y_exact = vec![0.0; 5];
        let exact = block.solve_into_warm(&mut y_exact, 1e-7, 300, Some(warm.u));
        prop_assert!(exact.converged && exact.evals <= cold.evals.max(1));
        prop_assert!(block.kkt_residual(&y_exact) < 1e-7);
    }

    /// Cholesky solve actually solves: `A·x = b` to high accuracy for
    /// random SPD systems.
    #[test]
    fn spd_solve_residual_small(
        entries in proptest::collection::vec(-1.0f64..1.0, 25),
        b in proptest::collection::vec(-10.0f64..10.0, 5),
    ) {
        let a = spd_from(&entries, 5);
        let x = a.solve_spd(&b).expect("SPD");
        let back = a.matvec(&x);
        for (r, e) in back.iter().zip(&b) {
            prop_assert!((r - e).abs() < 1e-8);
        }
    }

    /// The MPC closed loop on an exact linear plant converges to any
    /// reachable target from any start, and never leaves the box.
    #[test]
    fn mpc_converges_on_reachable_targets(
        k in 5.0f64..40.0,
        start in 0.2f64..1.0,
        target_frac in 0.05f64..0.95,
        n in 2usize..6,
    ) {
        let mut ctrl = MpcController::new(
            MpcConfig::paper_default(),
            vec![k; n],
            vec![0.2; n],
            vec![1.0; n],
        );
        let base = 10.0;
        let p_of = |f: &[f64]| base + f.iter().map(|x| k * x).sum::<f64>();
        let lo = p_of(&vec![0.2; n]);
        let hi = p_of(&vec![1.0; n]);
        let target = lo + target_frac * (hi - lo);
        let mut f = vec![start; n];
        for _ in 0..80 {
            let d = ctrl.compute(p_of(&f), target, &f);
            for x in &d.freqs {
                prop_assert!((0.2..=1.0 + 1e-9).contains(x));
            }
            f = d.freqs;
        }
        let err = (p_of(&f) - target).abs();
        // Within a couple of watts + the tiny peak-pull offset.
        prop_assert!(err < 3.0 + 0.02 * (hi - lo), "err={err}");
    }

    /// The two MPC backends produce the same decision vector for any
    /// single control period (random gains, feedback, target, start).
    #[test]
    fn mpc_backends_agree_single_period(
        k in 5.0f64..40.0,
        p_fb in 0.0f64..200.0,
        target in 0.0f64..200.0,
        f in 0.2f64..1.0,
        n in 2usize..6,
    ) {
        let mk = |backend| MpcController::with_backend(
            MpcConfig::paper_default(),
            vec![k; n],
            vec![0.2; n],
            vec![1.0; n],
            backend,
        );
        let da = mk(MpcBackend::Structured).compute(p_fb, target, &vec![f; n]);
        let db = mk(MpcBackend::DenseFista).compute(p_fb, target, &vec![f; n]);
        prop_assert!(da.qp.converged && db.qp.converged);
        for (x, y) in da.qp.x.iter().zip(&db.qp.x) {
            prop_assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }

    /// Scalar closed-loop pole: stable for any gain ratio inside the
    /// certified band, unstable beyond it.
    #[test]
    fn stability_band_is_tight(
        kappa in 10.0f64..2000.0,
        r in 0.1f64..100.0,
        lp in 2usize..16,
        tau in 1.0f64..20.0,
        inside in 0.05f64..0.95,
    ) {
        let params = LoopParams {
            lp,
            q: 1.0,
            r,
            kappa,
            alpha: (-1.0f64 / tau).exp(),
        };
        let gmax = sprint_control::stability::max_gain_ratio(params);
        prop_assert!(gmax > 0.0);
        let ok = scalar_pole(params, inside * gmax).abs();
        prop_assert!(ok < 1.0, "inside the band must be stable: {ok}");
        let bad = scalar_pole(params, gmax * 1.05).abs();
        prop_assert!(bad > 1.0, "outside the band must be unstable: {bad}");
    }

    /// Exponential reference: always between the start and the target,
    /// monotone in time.
    #[test]
    fn reference_is_monotone_and_bounded(
        tau in 0.5f64..60.0,
        from in -1000.0f64..1000.0,
        target in -1000.0f64..1000.0,
        t1 in 0.0f64..100.0,
        dt in 0.01f64..100.0,
    ) {
        let r = ExpReference::new(tau);
        let a = r.at(target, from, t1);
        let b = r.at(target, from, t1 + dt);
        let (lo, hi) = if from <= target { (from, target) } else { (target, from) };
        prop_assert!(a >= lo - 1e-9 && a <= hi + 1e-9);
        // Later points are no farther from the target.
        prop_assert!((b - target).abs() <= (a - target).abs() + 1e-12);
    }

    /// Kalman estimates stay within the convex hull of everything seen,
    /// for any measurement sequence.
    #[test]
    fn kalman_estimate_in_hull(
        q in 0.01f64..100.0,
        r in 0.01f64..10_000.0,
        zs in proptest::collection::vec(-5000.0f64..5000.0, 1..200),
    ) {
        let mut f = Kalman1d::new(q, r);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &z in &zs {
            lo = lo.min(z);
            hi = hi.max(z);
            let est = f.update(z);
            prop_assert!(est >= lo - 1e-9 && est <= hi + 1e-9, "est {est} outside [{lo},{hi}]");
        }
    }
}
