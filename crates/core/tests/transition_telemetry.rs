//! Table-driven check of the §IV-C supervisor transition graph against
//! the telemetry it emits: every escalation edge (overload stop, UPS
//! conservation, sprint end, recovery) must fire exactly the per-edge
//! counters it claims to, observed through a scoped collector.

use powersim::units::{Seconds, Utilization, Watts};
use sprintcon::{ActiveGrid, SprintCon, SprintConConfig, SprintConInputs, SprintMode};
use std::sync::Arc;
use telemetry::{Collector, MetricsSnapshot, NullSink};
use workloads::batch::BatchJob;
use workloads::progress_model::ProgressModel;

/// One control period's plant observation, as the table writes it.
#[derive(Clone, Copy)]
struct Obs {
    margin: f64,
    closed: bool,
    soc: f64,
}

const NOMINAL: Obs = Obs {
    margin: 0.1,
    closed: true,
    soc: 1.0,
};
const HOT_BREAKER: Obs = Obs {
    margin: 0.97,
    closed: true,
    soc: 1.0,
};
const OPEN_BREAKER: Obs = Obs {
    margin: 0.0,
    closed: false,
    soc: 1.0,
};
// paper_default soc_reserve is 0.03: "low" means at or below that.
const LOW_SOC: Obs = Obs {
    margin: 0.1,
    closed: true,
    soc: 0.02,
};
const HOT_AND_LOW: Obs = Obs {
    margin: 0.97,
    closed: true,
    soc: 0.02,
};

struct Case {
    name: &'static str,
    steps: &'static [Obs],
    final_mode: SprintMode,
    /// (per-edge counter name, expected count) — exhaustive: edges not
    /// listed must not have fired.
    edges: &'static [(&'static str, u64)],
}

const CASES: &[Case] = &[
    Case {
        name: "steady sprinting emits no transitions",
        steps: &[NOMINAL, NOMINAL, NOMINAL],
        final_mode: SprintMode::Sprinting,
        edges: &[],
    },
    Case {
        name: "overload stop: hot breaker escalates to CbProtect",
        steps: &[NOMINAL, HOT_BREAKER],
        final_mode: SprintMode::CbProtect,
        edges: &[("supervisor_transition.sprint->cb-protect", 1)],
    },
    Case {
        name: "an open breaker counts as stressed",
        steps: &[NOMINAL, OPEN_BREAKER],
        final_mode: SprintMode::CbProtect,
        edges: &[("supervisor_transition.sprint->cb-protect", 1)],
    },
    Case {
        name: "recovery: CbProtect returns to Sprinting once the breaker cools",
        steps: &[HOT_BREAKER, NOMINAL],
        final_mode: SprintMode::Sprinting,
        edges: &[
            ("supervisor_transition.sprint->cb-protect", 1),
            ("supervisor_transition.cb-protect->sprint", 1),
        ],
    },
    Case {
        name: "budget takeover: low SoC enters UpsConserve",
        steps: &[NOMINAL, LOW_SOC],
        final_mode: SprintMode::UpsConserve,
        edges: &[("supervisor_transition.sprint->ups-conserve", 1)],
    },
    Case {
        name: "sprint end: breaker stress with a drained UPS ends the sprint",
        steps: &[NOMINAL, HOT_AND_LOW],
        final_mode: SprintMode::Ended,
        edges: &[("supervisor_transition.sprint->ended", 1)],
    },
    Case {
        name: "Ended is terminal: nominal conditions do not resurrect the sprint",
        steps: &[HOT_AND_LOW, NOMINAL, NOMINAL],
        final_mode: SprintMode::Ended,
        edges: &[("supervisor_transition.sprint->ended", 1)],
    },
    Case {
        name: "a full escalation ladder counts every edge once",
        steps: &[NOMINAL, HOT_BREAKER, NOMINAL, LOW_SOC, HOT_AND_LOW],
        final_mode: SprintMode::Ended,
        edges: &[
            ("supervisor_transition.sprint->cb-protect", 1),
            ("supervisor_transition.cb-protect->sprint", 1),
            ("supervisor_transition.sprint->ups-conserve", 1),
            ("supervisor_transition.ups-conserve->ended", 1),
        ],
    },
];

fn run_case(steps: &[Obs]) -> (SprintMode, MetricsSnapshot) {
    let cfg = SprintConConfig::paper_default();
    let mut sc = SprintCon::new(cfg);
    let n = sc.server_controller().num_channels();
    let utils = vec![Utilization(0.6); sc.cfg.num_servers];
    let freqs = vec![0.6; n];
    let jobs: Vec<BatchJob> = (0..n)
        .map(|i| {
            BatchJob::new(
                format!("j{i}"),
                ProgressModel::new(0.2),
                400.0,
                Seconds(900.0),
            )
        })
        .collect();

    let collector = Arc::new(Collector::new(Box::new(NullSink)));
    telemetry::with_collector(Arc::clone(&collector), || {
        for obs in steps {
            sc.step(
                Seconds(1.0),
                SprintConInputs {
                    p_total: Watts(4200.0),
                    interactive_util: &utils,
                    batch_freqs: &freqs,
                    jobs: &jobs,
                    breaker_margin: obs.margin,
                    breaker_closed: obs.closed,
                    ups_soc: obs.soc,
                    queue: None,
                    grid: ActiveGrid::default(),
                },
            );
        }
        (sc.mode(), collector.snapshot())
    })
}

#[test]
fn transition_graph_fires_the_expected_counters() {
    for case in CASES {
        let (mode, snap) = run_case(case.steps);
        assert_eq!(mode, case.final_mode, "{}", case.name);

        let expected_total: u64 = case.edges.iter().map(|(_, n)| n).sum();
        assert_eq!(
            snap.counter("supervisor_mode_transitions"),
            expected_total,
            "{}: total transition count",
            case.name
        );
        for (edge, n) in case.edges {
            assert_eq!(snap.counter(edge), *n, "{}: counter {edge}", case.name);
        }
        // Exhaustiveness: no edge outside the table fired.
        let stray: Vec<_> = snap
            .counters
            .iter()
            .filter(|(k, _)| {
                k.starts_with("supervisor_transition.") && !case.edges.iter().any(|(e, _)| e == k)
            })
            .collect();
        assert!(
            stray.is_empty(),
            "{}: unexpected edges {stray:?}",
            case.name
        );
    }
}
