//! The power load allocator (§IV-A/B): decides, ahead of the fast
//! controllers, (1) the breaker power target `P_cb` via the overload
//! schedule, and (2) the batch power budget `P_batch`.

use crate::config::SprintConConfig;
use powersim::server::LinearServerModel;
use powersim::units::{NormFreq, Seconds, Watts};
use workloads::batch::BatchJob;
use workloads::trace::SlidingWindow;

/// Shape of the CB overload schedule, chosen from `T_burst` (§IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleKind {
    /// Burst under a minute: no need to constrain the sprinting power;
    /// the breaker tolerates a short excursion on its own curve.
    Unconstrained,
    /// Burst of a few minutes: overload continuously for the whole burst
    /// to maximize the additional energy.
    Constant,
    /// Long burst (15 min +): alternate overload and recovery so the
    /// breaker can cool and sprinting can continue indefinitely.
    Periodic,
}

impl ScheduleKind {
    /// The paper's selection rule.
    pub fn for_burst(t_burst: Seconds) -> Self {
        if t_burst.0 < 60.0 {
            ScheduleKind::Unconstrained
        } else if t_burst.0 <= 600.0 {
            ScheduleKind::Constant
        } else {
            ScheduleKind::Periodic
        }
    }
}

/// Default breaker-margin bar for re-entering an overload phase: the
/// breaker must have cooled to under this fraction of its trip budget.
/// The supervisor lowers the bar (divides by the grid price multiplier)
/// while energy is expensive, so sprints wait for a cooler breaker.
pub const SPRINT_ENTRY_MARGIN: f64 = 0.05;

/// Phase of the periodic schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
enum CbPhase {
    Overload { remaining: Seconds },
    Recover { remaining: Seconds },
}

/// Stateful CB-target scheduler.
#[derive(Debug, Clone)]
pub struct CbScheduler {
    pub kind: ScheduleKind,
    rated: Watts,
    overloaded: Watts,
    on: Seconds,
    off: Seconds,
    t_burst: Seconds,
    elapsed: Seconds,
    phase: CbPhase,
    /// Breaker-margin bar for starting a new overload phase.
    entry_margin: f64,
}

impl CbScheduler {
    pub fn new(cfg: &SprintConConfig) -> Self {
        let kind = ScheduleKind::for_burst(cfg.t_burst);
        CbScheduler {
            kind,
            rated: cfg.rated(),
            overloaded: cfg.overloaded(),
            on: cfg.overload_duration,
            off: cfg.recovery_duration,
            t_burst: cfg.t_burst,
            elapsed: Seconds::ZERO,
            phase: CbPhase::Overload {
                remaining: cfg.overload_duration,
            },
            entry_margin: SPRINT_ENTRY_MARGIN,
        }
    }

    /// Set the breaker-margin bar for re-entering overload (the
    /// supervisor's price-spike hook). Writing the default back is a
    /// same-value store — bit-transparent at the nominal price.
    pub fn set_entry_margin(&mut self, margin: f64) {
        self.entry_margin = margin;
    }

    /// Whether the schedule is currently in the overload state.
    pub fn is_overloading(&self) -> bool {
        match self.kind {
            ScheduleKind::Unconstrained => true,
            ScheduleKind::Constant => self.elapsed.0 < self.t_burst.0,
            ScheduleKind::Periodic => matches!(self.phase, CbPhase::Overload { .. }),
        }
    }

    /// Current `P_cb` target; `None` when unconstrained (the paper does
    /// not control short sprints).
    pub fn p_cb(&self) -> Option<Watts> {
        match self.kind {
            ScheduleKind::Unconstrained => None,
            ScheduleKind::Constant => Some(if self.is_overloading() {
                self.overloaded
            } else {
                self.rated
            }),
            ScheduleKind::Periodic => Some(match self.phase {
                CbPhase::Overload { .. } => self.overloaded,
                CbPhase::Recover { .. } => self.rated,
            }),
        }
    }

    /// Advance by `dt`. `breaker_margin` is the fraction of the trip
    /// budget consumed; entering a new overload phase is deferred until
    /// the breaker has cooled (margin near zero), which keeps the
    /// schedule safe even when the supervisor shortened an earlier
    /// recovery.
    pub fn advance(&mut self, dt: Seconds, breaker_margin: f64) {
        self.elapsed += dt;
        if self.kind != ScheduleKind::Periodic {
            return;
        }
        match self.phase {
            CbPhase::Overload { remaining } => {
                let left = Seconds(remaining.0 - dt.0);
                if left.0 <= 0.0 {
                    self.phase = CbPhase::Recover {
                        remaining: self.off,
                    };
                } else {
                    self.phase = CbPhase::Overload { remaining: left };
                }
            }
            CbPhase::Recover { remaining } => {
                let left = Seconds(remaining.0 - dt.0);
                if left.0 <= 0.0 && breaker_margin < self.entry_margin {
                    self.phase = CbPhase::Overload { remaining: self.on };
                } else {
                    // Hold in recovery until both the timer and the
                    // breaker's thermal state allow another overload.
                    self.phase = CbPhase::Recover {
                        remaining: left.max(Seconds::ZERO),
                    };
                }
            }
        }
    }

    /// Force the schedule into recovery (supervisor action when the
    /// breaker is close to tripping, §IV-C).
    ///
    /// * Periodic: jump to a fresh recovery phase.
    /// * Constant: the burst's overload budget is spent — truncate it
    ///   (without this, the supervisor's protect/resume oscillation
    ///   ratchets the thermal accumulator up to a trip, because one
    ///   period of recovery cools less than one period of overload
    ///   heats).
    /// * Unconstrained: nothing to do; short sprints ride the raw curve.
    pub fn force_recovery(&mut self) {
        match self.kind {
            ScheduleKind::Periodic => {
                self.phase = CbPhase::Recover {
                    remaining: self.off,
                };
            }
            ScheduleKind::Constant => {
                self.t_burst = self.elapsed;
            }
            ScheduleKind::Unconstrained => {}
        }
    }

    /// How much of the next `horizon` seconds the schedule will spend in
    /// the overload state (projecting the current phase forward). The
    /// allocator uses this to bank batch progress into the overload
    /// windows that actually exist before a deadline.
    pub fn overload_time_within(&self, horizon: Seconds) -> Seconds {
        if horizon.0 <= 0.0 {
            return Seconds::ZERO;
        }
        match self.kind {
            ScheduleKind::Unconstrained => return horizon,
            ScheduleKind::Constant => {
                let left = (self.t_burst.0 - self.elapsed.0).max(0.0);
                return Seconds(horizon.0.min(left));
            }
            ScheduleKind::Periodic => {}
        }
        let mut remaining = horizon.0;
        let mut overload = 0.0;
        let (mut in_overload, mut phase_left) = match self.phase {
            CbPhase::Overload { remaining } => (true, remaining.0),
            CbPhase::Recover { remaining } => (false, remaining.0),
        };
        while remaining > 0.0 {
            let take = remaining.min(phase_left.max(0.0));
            if in_overload {
                overload += take;
            }
            remaining -= take;
            in_overload = !in_overload;
            phase_left = if in_overload { self.on.0 } else { self.off.0 };
        }
        Seconds(overload)
    }
}

/// The allocator's published targets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllocatorTargets {
    /// Breaker power target; `None` = uncontrolled short sprint.
    pub p_cb: Option<Watts>,
    /// Batch power budget for the server power controller.
    pub p_batch: Watts,
    /// The schedule is currently overloading the breaker.
    pub overloading: bool,
}

/// The power load allocator.
#[derive(Debug, Clone)]
pub struct PowerLoadAllocator {
    scheduler: CbScheduler,
    /// Per-server linear batch power models (Eq. (2)).
    batch_models: Vec<LinearServerModel>,
    batch_cores_per_server: usize,
    /// Recent interactive-power headroom deficits
    /// (`p_inter − (P_cb − P_batch)`), one sample per control period.
    deficit_window: SlidingWindow,
    /// Smoothed interactive power estimate.
    p_inter_est: f64,
    /// Smoothed bias between the controller's feedback power (Eq. (6),
    /// which absorbs fan power and model error) and what the linear
    /// batch models predict for the actual frequencies. The deadline
    /// floors add it so "power budget" and "delivered batch power" talk
    /// about the same watts.
    fb_bias: f64,
    /// Factor-2 multiplicative trim on the headroom split.
    trim: f64,
    /// Deadline power floors from factor 1, per CB phase: the allocator
    /// banks batch progress into overload windows so that recovery
    /// windows can run batch at the DVFS floor (exploiting the CB
    /// tolerance to execute batch in time, §I challenge 3 / Fig. 7a).
    deadline_floor_overload: Watts,
    deadline_floor_recovery: Watts,
    p_batch_min: Watts,
    p_batch_max: Watts,
    fmin: NormFreq,
    fmax: NormFreq,
    next_update: Seconds,
    period: Seconds,
    inter_pressure_high: f64,
    inter_pressure_low: f64,
    trim_step: f64,
    deadline_margin: f64,
    /// Most recent published `P_batch`.
    p_batch: Watts,
}

impl PowerLoadAllocator {
    pub fn new(cfg: &SprintConConfig, batch_models: Vec<LinearServerModel>) -> Self {
        assert_eq!(batch_models.len(), cfg.num_servers);
        let fmin = cfg.server.freq_scale.min;
        let fmax = cfg.server.freq_scale.max;
        let p_min: f64 = batch_models.iter().map(|m| m.predict(fmin).0).sum();
        let p_max: f64 = batch_models.iter().map(|m| m.predict(fmax).0).sum();
        let window_len = (cfg.allocator_period.0 / cfg.control_period.0)
            .round()
            .max(1.0) as usize;
        let scheduler = CbScheduler::new(cfg);
        PowerLoadAllocator {
            scheduler,
            batch_models,
            batch_cores_per_server: cfg.batch_cores_per_server(),
            deficit_window: SlidingWindow::new(window_len),
            p_inter_est: 0.0,
            fb_bias: 0.0,
            trim: 1.0,
            deadline_floor_overload: Watts(p_min),
            deadline_floor_recovery: Watts(p_min),
            p_batch_min: Watts(p_min),
            p_batch_max: Watts(p_max),
            fmin,
            fmax,
            next_update: Seconds::ZERO,
            period: cfg.allocator_period,
            inter_pressure_high: cfg.inter_pressure_high,
            inter_pressure_low: cfg.inter_pressure_low,
            trim_step: cfg.p_batch_trim_step,
            deadline_margin: cfg.deadline_margin,
            p_batch: Watts(p_min),
        }
    }

    /// The deadline power floors (factor 1, §IV-B), per CB phase.
    ///
    /// For each job, the progress model gives the *cycle-average* rate it
    /// needs (`r* = remaining work / remaining time`). The allocator
    /// first tries to satisfy `r*` by running fast only during overload
    /// windows (recovery at the DVFS floor); only if even peak overload
    /// frequency cannot bank enough progress does the recovery floor
    /// rise. For non-periodic schedules both floors collapse to the
    /// single-phase frequency `freq_for_rate(r*)`.
    fn compute_deadline_floors(&self, now: Seconds, jobs: &[BatchJob]) -> (Watts, Watts) {
        assert_eq!(
            jobs.len(),
            self.batch_models.len() * self.batch_cores_per_server,
            "one job per batch core"
        );
        // Per-server frequency affordable from the *overload-phase* CB
        // headroom alone — banking beyond it would draw the UPS, which
        // the floor must not demand unless the deadline truly requires it.
        let n = self.batch_models.len() as f64;
        let headroom_over = ((self.scheduler.overloaded.0 - self.p_inter_est) / n).max(0.0);
        let mut total_over = 0.0;
        let mut total_rec = 0.0;
        for (s, model) in self.batch_models.iter().enumerate() {
            let f_head = model
                .freq_for_power(Watts(headroom_over))
                .0
                .clamp(self.fmin.0, self.fmax.0);
            let slice =
                &jobs[s * self.batch_cores_per_server..(s + 1) * self.batch_cores_per_server];
            let mut fsum_over = 0.0;
            let mut fsum_rec = 0.0;
            for job in slice {
                let horizon = Seconds(job.deadline.0 - now.0);
                let (f_over, f_rec) = match job.required_rate(now) {
                    Some(r) if r <= 0.0 => (self.fmin.0, self.fmin.0),
                    None => (self.fmax.0, self.fmax.0),
                    Some(r_star) => self.plan_job_floor(job, r_star, horizon, f_head),
                };
                fsum_over += f_over;
                fsum_rec += f_rec;
            }
            let m = slice.len() as f64;
            total_over += model.predict(NormFreq(fsum_over / m)).0;
            total_rec += model.predict(NormFreq(fsum_rec / m)).0;
        }
        // The floors are targets for the *feedback* power (Eq. (6)),
        // which runs higher than the model by the observed bias (fans,
        // model error); compensate so the batch cores actually reach the
        // planned frequencies. Cap: bias correction never exceeds the
        // model maximum by more than the bias itself.
        let bias = self.fb_bias.max(0.0);
        (
            Watts((total_over * self.deadline_margin + bias).min(self.p_batch_max.0 + bias)),
            Watts((total_rec * self.deadline_margin + bias).min(self.p_batch_max.0 + bias)),
        )
    }

    /// Floor frequencies `(f_over, f_rec)` for one job needing
    /// cycle-average rate `r_star` over the remaining `horizon`:
    ///
    /// 1. run during the overload windows that actually exist before the
    ///    deadline (projected from the schedule), capped at the headroom
    ///    frequency `f_head`, with recovery at the DVFS floor;
    /// 2. if that cannot bank enough progress, raise the recovery floor;
    /// 3. if even recovery at peak is short, exceed the overload headroom
    ///    (UPS-backed — the deadline outranks energy efficiency).
    fn plan_job_floor(
        &self,
        job: &BatchJob,
        r_star: f64,
        horizon: Seconds,
        f_head: f64,
    ) -> (f64, f64) {
        let t = horizon.0.max(1e-9);
        let t_on = self.scheduler.overload_time_within(horizon).0.min(t);
        let t_off = t - t_on;
        let model = &job.model;
        let rate_min = model.rate(self.fmin.0);
        let clampf = |f: f64| f.clamp(self.fmin.0, self.fmax.0);
        if t_on <= 1e-9 {
            // No overload window before the deadline: recovery does it all.
            let f = model.freq_for_rate(r_star.min(1.0)).unwrap_or(self.fmax.0);
            return (self.fmin.0, clampf(f));
        }
        if t_off <= 1e-9 {
            let f = model.freq_for_rate(r_star.min(1.0)).unwrap_or(self.fmax.0);
            return (clampf(f), self.fmin.0);
        }
        // Step 1: overload windows (up to the headroom freq) + recovery
        // at the DVFS floor.
        let best_banked = (t_on * model.rate(f_head) + t_off * rate_min) / t;
        if best_banked >= r_star {
            let need_over = (t * r_star - t_off * rate_min) / t_on;
            let f = model
                .freq_for_rate(need_over.clamp(0.0, 1.0))
                .unwrap_or(f_head);
            return (clampf(f), self.fmin.0);
        }
        // Step 2: recovery contributes, overload pinned at headroom.
        let need_rec = (t * r_star - t_on * model.rate(f_head)) / t_off;
        if need_rec <= 1.0 {
            let f_rec = model
                .freq_for_rate(need_rec.clamp(0.0, 1.0))
                .unwrap_or(self.fmax.0);
            return (clampf(f_head), clampf(f_rec));
        }
        // Step 3: deadline outranks headroom — overload beyond f_head.
        let rate_max = model.rate(self.fmax.0);
        let need_over = (t * r_star - t_off * rate_max) / t_on;
        let f_over = model
            .freq_for_rate(need_over.clamp(0.0, 1.0))
            .unwrap_or(self.fmax.0);
        (clampf(f_over), self.fmax.0)
    }

    /// Per-control-period observation of the interactive power estimate
    /// (from Eq. (5)); feeds the factor-2 window.
    pub fn observe_interactive_power(&mut self, p_inter: Watts) {
        let p_cb = self.scheduler.p_cb().unwrap_or(Watts(f64::INFINITY));
        let headroom = p_cb.0 - self.p_batch.0;
        self.deficit_window.push(p_inter.0 - headroom);
        // Exponential smoothing for the headroom split (robust to the
        // second-scale wobble the window is meant to judge).
        let alpha = 0.05;
        self.p_inter_est = if self.p_inter_est == 0.0 {
            p_inter.0
        } else {
            (1.0 - alpha) * self.p_inter_est + alpha * p_inter.0
        };
    }

    /// Per-control-period observation of the feedback-vs-model offset:
    /// `p_fb` is the Eq. (6) feedback the server controller tracks,
    /// `model_predicted` is Σᵢ Kᵢ·fᵢ + Cᵢ at the *actual* frequencies.
    pub fn observe_feedback_bias(&mut self, p_fb: Watts, model_predicted: Watts) {
        let sample = p_fb.0 - model_predicted.0;
        let alpha = 0.05;
        self.fb_bias = (1.0 - alpha) * self.fb_bias + alpha * sample;
    }

    /// Current bias estimate (diagnostics, tests).
    pub fn feedback_bias(&self) -> f64 {
        self.fb_bias
    }

    /// Advance time; runs the slow (30 s) re-allocation when due, and
    /// re-evaluates `P_batch` against the current CB phase every call so
    /// the budget steps with the overload schedule (Fig. 7a).
    pub fn advance(&mut self, now: Seconds, dt: Seconds, breaker_margin: f64, jobs: &[BatchJob]) {
        self.scheduler.advance(dt, breaker_margin);
        if now.0 >= self.next_update.0 {
            self.next_update = Seconds(now.0 + self.period.0);
            telemetry::counter_add("allocator_updates", 1);
            // Factor 1: deadline pressure, phase-aware.
            let (over, rec) = self.compute_deadline_floors(now, jobs);
            self.deadline_floor_overload = over;
            self.deadline_floor_recovery = rec;
            // Factor 2: interactive utilization of the CB headroom.
            if self.deficit_window.is_full() {
                let frac = self.deficit_window.fraction_above(0.0);
                let trim_before = self.trim;
                if frac > self.inter_pressure_high {
                    self.trim *= 1.0 - self.trim_step;
                } else if frac < self.inter_pressure_low {
                    self.trim *= 1.0 + self.trim_step;
                }
                self.trim = self.trim.clamp(0.3, 1.5);
                if self.trim != trim_before {
                    telemetry::counter_add("allocator_pbatch_adjustments", 1);
                }
                telemetry::gauge_set("allocator_trim", self.trim);
            }
        }
        self.p_batch = self.evaluate_p_batch();
        telemetry::gauge_set("allocator_p_batch_w", self.p_batch.0);
    }

    fn evaluate_p_batch(&self) -> Watts {
        let p_cb = match self.scheduler.p_cb() {
            Some(p) => p,
            // Unconstrained sprint: batch may use everything.
            None => return self.p_batch_max,
        };
        let headroom = ((p_cb.0 - self.p_inter_est) * self.trim).max(0.0);
        let floor = if self.scheduler.is_overloading() {
            self.deadline_floor_overload
        } else {
            self.deadline_floor_recovery
        };
        // Upper clamp includes the feedback bias: the budget is expressed
        // in Eq. (6) feedback watts, which sit above the model by `bias`.
        let hi = self.p_batch_max.0 + self.fb_bias.max(0.0);
        Watts(headroom.max(floor.0).clamp(self.p_batch_min.0, hi))
    }

    /// Current targets for the two controllers.
    pub fn targets(&self) -> AllocatorTargets {
        AllocatorTargets {
            p_cb: self.scheduler.p_cb(),
            p_batch: self.p_batch,
            overloading: self.scheduler.is_overloading(),
        }
    }

    /// Supervisor escalation: breaker close to tripping (§IV-C).
    pub fn force_recovery(&mut self) {
        self.scheduler.force_recovery();
        self.p_batch = self.evaluate_p_batch();
    }

    /// Forward the sprint-entry bar to the CB scheduler (the
    /// supervisor's price-spike hook).
    pub fn set_sprint_entry_margin(&mut self, margin: f64) {
        self.scheduler.set_entry_margin(margin);
    }

    pub fn p_batch_bounds(&self) -> (Watts, Watts) {
        (self.p_batch_min, self.p_batch_max)
    }

    pub fn schedule_kind(&self) -> ScheduleKind {
        self.scheduler.kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powersim::server::LinearServerModel;
    use workloads::progress_model::ProgressModel;

    fn cfg() -> SprintConConfig {
        SprintConConfig::paper_default()
    }

    fn models(c: &SprintConConfig) -> Vec<LinearServerModel> {
        (0..c.num_servers)
            .map(|_| LinearServerModel { k: 60.0, c: 78.0 })
            .collect()
    }

    fn jobs(c: &SprintConConfig, deadline: Seconds, work: f64) -> Vec<BatchJob> {
        (0..c.total_batch_cores())
            .map(|i| BatchJob::new(format!("j{i}"), ProgressModel::new(0.2), work, deadline))
            .collect()
    }

    #[test]
    fn schedule_kind_selection_follows_the_paper() {
        assert_eq!(
            ScheduleKind::for_burst(Seconds(30.0)),
            ScheduleKind::Unconstrained
        );
        assert_eq!(
            ScheduleKind::for_burst(Seconds(300.0)),
            ScheduleKind::Constant
        );
        assert_eq!(
            ScheduleKind::for_burst(Seconds(600.0)),
            ScheduleKind::Constant
        );
        assert_eq!(
            ScheduleKind::for_burst(Seconds::minutes(15.0)),
            ScheduleKind::Periodic
        );
    }

    #[test]
    fn periodic_schedule_alternates_on_time() {
        let c = cfg();
        let mut s = CbScheduler::new(&c);
        // 150 s of overload at 4.0 kW...
        for _ in 0..150 {
            assert_eq!(s.p_cb(), Some(Watts(4000.0)), "t<150 must overload");
            s.advance(Seconds(1.0), 0.0);
        }
        // ...then 300 s of recovery at 3.2 kW...
        for _ in 0..300 {
            assert_eq!(s.p_cb(), Some(Watts(3200.0)));
            s.advance(Seconds(1.0), 0.0);
        }
        // ...then overload again.
        assert_eq!(s.p_cb(), Some(Watts(4000.0)));
    }

    #[test]
    fn recovery_extends_while_breaker_is_hot() {
        let c = cfg();
        let mut s = CbScheduler::new(&c);
        for _ in 0..150 {
            s.advance(Seconds(1.0), 0.0);
        }
        // Recovery elapses but the breaker stays hot: no new overload.
        for _ in 0..400 {
            s.advance(Seconds(1.0), 0.5);
            assert_eq!(s.p_cb(), Some(Watts(3200.0)));
        }
        // Once cold, the next overload begins.
        s.advance(Seconds(1.0), 0.01);
        assert_eq!(s.p_cb(), Some(Watts(4000.0)));
    }

    #[test]
    fn raised_entry_bar_defers_the_next_overload() {
        let c = cfg();
        let mut s = CbScheduler::new(&c);
        for _ in 0..150 {
            s.advance(Seconds(1.0), 0.0);
        }
        // A 4× price spike lowers the bar to 0.0125: a margin of 0.03 —
        // good enough at the nominal price — no longer re-enters.
        s.set_entry_margin(SPRINT_ENTRY_MARGIN / 4.0);
        for _ in 0..400 {
            s.advance(Seconds(1.0), 0.03);
            assert_eq!(s.p_cb(), Some(Watts(3200.0)));
        }
        // Price back to nominal: 0.03 clears the default 0.05 bar.
        s.set_entry_margin(SPRINT_ENTRY_MARGIN);
        s.advance(Seconds(1.0), 0.03);
        assert_eq!(s.p_cb(), Some(Watts(4000.0)));
    }

    #[test]
    fn constant_schedule_holds_then_releases() {
        let mut c = cfg();
        c.t_burst = Seconds(300.0);
        let mut s = CbScheduler::new(&c);
        for _ in 0..300 {
            assert_eq!(s.p_cb(), Some(Watts(4000.0)));
            s.advance(Seconds(1.0), 0.0);
        }
        assert_eq!(s.p_cb(), Some(Watts(3200.0)));
        assert!(!s.is_overloading());
    }

    #[test]
    fn force_recovery_truncates_a_constant_burst() {
        let mut c = cfg();
        c.t_burst = Seconds(300.0);
        let mut s = CbScheduler::new(&c);
        for _ in 0..100 {
            s.advance(Seconds(1.0), 0.0);
        }
        assert!(s.is_overloading());
        // Supervisor escalation mid-burst: the overload must END, not
        // merely pause (a pause would ratchet the breaker to a trip).
        s.force_recovery();
        assert!(!s.is_overloading());
        assert_eq!(s.p_cb(), Some(Watts(3200.0)));
        for _ in 0..300 {
            s.advance(Seconds(1.0), 0.0);
            assert!(!s.is_overloading(), "truncation must be permanent");
        }
        // And the planner sees no overload time left.
        assert_eq!(s.overload_time_within(Seconds(500.0)), Seconds(0.0));
    }

    #[test]
    fn unconstrained_schedule_has_no_target() {
        let mut c = cfg();
        c.t_burst = Seconds(30.0);
        let s = CbScheduler::new(&c);
        assert_eq!(s.p_cb(), None);
        assert!(s.is_overloading());
    }

    #[test]
    fn p_batch_tracks_cb_phase() {
        let c = cfg();
        let mut a = PowerLoadAllocator::new(&c, models(&c));
        // Relaxed deadlines so the headroom term (not the deadline floor)
        // decides P_batch.
        let js = jobs(&c, Seconds(36000.0), 10.0);
        // Feed a steady interactive power of 2.0 kW (stop short of the
        // 150 s phase boundary).
        for k in 0..145 {
            a.observe_interactive_power(Watts(2000.0));
            a.advance(Seconds(k as f64), Seconds(1.0), 0.0, &js);
        }
        let during_overload = a.p_batch;
        assert!(a.targets().overloading);
        // Cross into recovery.
        for k in 145..200 {
            a.observe_interactive_power(Watts(2000.0));
            a.advance(Seconds(k as f64), Seconds(1.0), 0.0, &js);
        }
        assert!(!a.targets().overloading);
        let during_recovery = a.p_batch;
        // The 800 W of extra CB headroom during overload flows to batch.
        assert!(
            during_overload.0 > during_recovery.0 + 300.0,
            "overload={during_overload} recovery={during_recovery}"
        );
    }

    #[test]
    fn deadline_pressure_raises_the_floor() {
        let c = cfg();
        let mut a = PowerLoadAllocator::new(&c, models(&c));
        // Jobs that need ~peak frequency to make their deadline.
        let tight = jobs(&c, Seconds(600.0), 580.0);
        // Give the allocator a huge interactive estimate so headroom ≈ 0.
        for _ in 0..35 {
            a.observe_interactive_power(Watts(4000.0));
        }
        a.advance(Seconds(0.0), Seconds(1.0), 0.0, &tight);
        // Despite zero headroom, the deadline floor forces a high budget:
        // required f ≈ 0.97 → p ≈ 16 × (60·0.97 + 78) ≈ 2.2 kW.
        assert!(
            a.p_batch.0 > 2000.0,
            "deadline floor must dominate: {}",
            a.p_batch
        );
    }

    #[test]
    fn relaxed_deadlines_keep_the_floor_low() {
        let c = cfg();
        let mut a = PowerLoadAllocator::new(&c, models(&c));
        // Tiny jobs with far deadlines need only the DVFS floor.
        let relaxed = jobs(&c, Seconds(36000.0), 10.0);
        for _ in 0..35 {
            a.observe_interactive_power(Watts(3900.0));
        }
        a.advance(Seconds(0.0), Seconds(1.0), 0.0, &relaxed);
        // Headroom ≈ 0 and no deadline pressure → near the minimum
        // (within the deadline_margin safety factor of it).
        let (pmin, _) = a.p_batch_bounds();
        assert!(
            a.p_batch.0 < pmin.0 * (c.deadline_margin + 0.03),
            "p_batch={} pmin={}",
            a.p_batch,
            pmin
        );
    }

    #[test]
    fn factor2_trims_when_interactive_needs_the_headroom() {
        let c = cfg();
        let mut a = PowerLoadAllocator::new(&c, models(&c));
        let js = jobs(&c, Seconds(36000.0), 10.0);
        // Moderate interactive level first so p_batch settles mid-range.
        let mut now = 0.0;
        for _ in 0..40 {
            a.observe_interactive_power(Watts(2000.0));
            a.advance(Seconds(now), Seconds(1.0), 0.0, &js);
            now += 1.0;
        }
        let before = a.p_batch;
        // Now interactive consistently exceeds P_cb − P_batch: deficits
        // positive nearly always → trim shrinks over allocator updates.
        for _ in 0..120 {
            a.observe_interactive_power(Watts(3950.0));
            a.advance(Seconds(now), Seconds(1.0), 0.0, &js);
            now += 1.0;
        }
        assert!(
            a.trim < 1.0,
            "trim must shrink under sustained pressure: {}",
            a.trim
        );
        let _ = before; // p_batch also responds through p_inter_est
    }

    #[test]
    fn p_batch_always_within_bounds() {
        let c = cfg();
        let mut a = PowerLoadAllocator::new(&c, models(&c));
        let js = jobs(&c, Seconds(600.0), 590.0);
        let (pmin, pmax) = a.p_batch_bounds();
        let mut now = 0.0;
        for k in 0..1000 {
            let p_inter = 1500.0 + 2500.0 * ((k as f64) * 0.11).sin().abs();
            a.observe_interactive_power(Watts(p_inter));
            a.advance(Seconds(now), Seconds(1.0), 0.0, &js);
            now += 1.0;
            assert!(a.p_batch.0 >= pmin.0 - 1e-9 && a.p_batch.0 <= pmax.0 + 1e-9);
        }
    }
}
