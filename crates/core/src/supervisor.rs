//! The sprint supervisor: the top-level SprintCon object (Fig. 4).
//!
//! Owns the power load allocator and the two controllers, watches the
//! breaker and the energy storage, and handles the escalation ladder of
//! §IV-C:
//!
//! * breaker close to tripping → stop overloading it; the UPS takes over
//!   the excess load while the breaker recovers;
//! * energy storage running out → `P_cb` becomes the power target for
//!   *all* workloads (interactive cores get throttled too, a simple
//!   power-bidding fallback in the spirit of \[2\]);
//! * both → sprinting ends; the rack is driven back under the rated
//!   breaker capacity with no UPS support.

use crate::allocator::{PowerLoadAllocator, SPRINT_ENTRY_MARGIN};
use crate::config::{ConfigError, SprintConConfig};
use crate::server_controller::ServerPowerController;
use crate::ups_controller::UpsPowerController;
use powersim::grid::ActiveGrid;
use powersim::units::{NormFreq, Seconds, Utilization, Watts};
use workloads::batch::BatchJob;

/// UPS deadbeat undershoot on the curtailment cap while in
/// [`SprintMode::GridCurtail`]: compliance is judged on grid-side draw,
/// so the supervisor holds the breaker a few σ of monitor noise below
/// the cap rather than exactly on it.
const GRID_CB_MARGIN: f64 = 0.97;

/// Watts of the curtailment budget reserved against fan draw and model
/// error when triaging batch frequencies under a curtailment cap.
const GRID_TRIAGE_GUARD_W: f64 = 100.0;

/// Request-p99 bar above which the interactive tier is considered hot
/// during a curtailment: the queue is already stretching sojourn times,
/// so the cut must come from batch triage, not interactive throttling.
/// Held at half the tightest (100 ms) latency SLO so throttling backs
/// off well before the tail budget is spent.
const GRID_QUEUE_P99_GUARD_S: f64 = 0.05;

/// Supervisor operating mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SprintMode {
    /// Normal sprinting: CB on schedule, UPS covering the gap,
    /// interactive at peak, batch MPC-controlled.
    Sprinting,
    /// Breaker near its trip budget: overload stopped, UPS carries the
    /// excess until the breaker cools.
    CbProtect,
    /// UPS nearly empty: every workload is throttled into `P_cb`.
    UpsConserve,
    /// Both protections exhausted: sprint over, rack held under the
    /// rated capacity.
    Ended,
    /// An active grid curtailment: forced un-sprint with the rack driven
    /// under the curtailed cap (deadline-aware batch triage, interactive
    /// protected while the request queue is hot).
    GridCurtail,
}

impl SprintMode {
    /// Canonical short label, shared by traces, telemetry and the
    /// simulator's mode records.
    pub fn label(&self) -> &'static str {
        match self {
            SprintMode::Sprinting => "sprint",
            SprintMode::CbProtect => "cb-protect",
            SprintMode::UpsConserve => "ups-conserve",
            SprintMode::Ended => "ended",
            SprintMode::GridCurtail => "grid-curtail",
        }
    }
}

impl std::fmt::Display for SprintMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Open-loop request-queue measurement for one control period: what a
/// serving front end's load balancer would report. Plain data, no
/// telemetry — policies can be ablated on tail latency without
/// perturbing run digests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueMeasurement {
    /// Mean queue depth per server, requests.
    pub depth: f64,
    /// p99 request sojourn time over the period, seconds.
    pub p99_s: f64,
    /// Requests dropped per second over the period.
    pub drop_rate: f64,
}

/// Measurements handed to the supervisor each control period.
#[derive(Debug, Clone)]
pub struct SprintConInputs<'a> {
    /// Measured total rack power (power monitor).
    pub p_total: Watts,
    /// Per-server mean interactive-core utilization.
    pub interactive_util: &'a [Utilization],
    /// Current per-batch-core frequencies (actuator state).
    pub batch_freqs: &'a [f64],
    /// Batch jobs, ordered like the batch cores.
    pub jobs: &'a [BatchJob],
    /// Breaker thermal margin in `[0, 1]`.
    pub breaker_margin: f64,
    /// Breaker conducting?
    pub breaker_closed: bool,
    /// UPS state of charge fraction in `[0, 1]`.
    pub ups_soc: f64,
    /// One-period-stale open-loop queue measurement; `None` on the
    /// closed-loop utilization-trace path.
    pub queue: Option<QueueMeasurement>,
    /// Grid signals active this period ([`ActiveGrid::default`] — no
    /// curtailment, multiplier 1, no regulation — is bit-transparent).
    pub grid: ActiveGrid,
}

/// Commands returned to the plant each control period.
#[derive(Debug, Clone)]
pub struct SprintConOutputs {
    /// Frequency command per batch core.
    pub batch_freqs: Vec<f64>,
    /// Frequency command for every interactive core.
    pub interactive_freq: NormFreq,
    /// UPS discharge command.
    pub ups_discharge: Watts,
    /// Current breaker power target (`None` for uncontrolled sprints).
    pub p_cb_target: Option<Watts>,
    /// Current batch power budget.
    pub p_batch_target: Watts,
    pub mode: SprintMode,
}

/// The complete SprintCon control system.
#[derive(Debug, Clone)]
pub struct SprintCon {
    pub cfg: SprintConConfig,
    allocator: PowerLoadAllocator,
    server_ctrl: ServerPowerController,
    ups_ctrl: UpsPowerController,
    mode: SprintMode,
    now: Seconds,
    /// Interactive throttle state used in conservation modes.
    inter_freq: NormFreq,
    // --- degradation-ladder state (sensor-fault tolerance) ---
    /// Last reading that passed the plausibility checks.
    last_good_p_total: Option<Watts>,
    /// Previous raw reading (stuck-sensor detection).
    last_raw_p_total: Option<Watts>,
    /// Consecutive bit-identical raw readings beyond the first.
    repeat_run: u32,
    /// How long the supervisor has been without a trustworthy reading.
    stale_for: Seconds,
    /// Was the sensor considered faulty last period (guard-band edge)?
    sensor_degraded: bool,
    /// Breaker-power ceiling granted by the datacenter-level headroom
    /// market (`rated + grant`); `None` — the single-rack default —
    /// leaves every target untouched. See [`Self::apply_feeder_grant`].
    feeder_cap: Option<Watts>,
    /// Most recent open-loop queue measurement (store-only, like the
    /// market methods: telemetry-free so digests are untouched).
    last_queue: Option<QueueMeasurement>,
    /// Grid signals observed at the top of the current period; the
    /// default (no signals) leaves every code path bit-identical.
    active_grid: ActiveGrid,
}

impl SprintCon {
    /// Validate `cfg` and build the full control system.
    pub fn try_new(cfg: SprintConConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let server_ctrl = ServerPowerController::new(&cfg);
        let allocator = PowerLoadAllocator::new(&cfg, server_ctrl.batch_models().to_vec());
        Ok(SprintCon {
            allocator,
            server_ctrl,
            ups_ctrl: UpsPowerController::new(0.0),
            mode: SprintMode::Sprinting,
            now: Seconds::ZERO,
            inter_freq: NormFreq::PEAK,
            cfg,
            last_good_p_total: None,
            last_raw_p_total: None,
            repeat_run: 0,
            stale_for: Seconds::ZERO,
            sensor_degraded: false,
            feeder_cap: None,
            last_queue: None,
            active_grid: ActiveGrid::default(),
        })
    }

    /// Build the control system, panicking on an invalid config; code
    /// taking configuration from outside should prefer [`Self::try_new`].
    pub fn new(cfg: SprintConConfig) -> Self {
        Self::try_new(cfg).unwrap_or_else(|e| panic!("invalid SprintCon config: {e}"))
    }

    pub fn mode(&self) -> SprintMode {
        self.mode
    }

    pub fn now(&self) -> Seconds {
        self.now
    }

    /// Access the server controller (model queries, tests, benches).
    pub fn server_controller(&self) -> &ServerPowerController {
        &self.server_ctrl
    }

    /// The most recent open-loop queue measurement handed to
    /// [`Self::step`], if any — the tail-latency signal ablation
    /// harnesses read alongside the mode. Store-only and telemetry-free
    /// by the same contract as the market methods below.
    pub fn queue_measurement(&self) -> Option<QueueMeasurement> {
        self.last_queue
    }

    // --- datacenter headroom market (two-level §IV-C generalization) ---
    //
    // These methods are deliberately telemetry-free: market rounds run
    // at supervisor boundaries outside any per-run collector scope, and
    // the FNV run digest includes telemetry counters, so a bid must not
    // perturb a rack's digest.

    /// Watts of overload headroom this rack wants from the shared tree:
    /// the full overload swing (`overloaded − rated`) whenever the
    /// sprint is still live. The request stays at the full swing during
    /// recovery phases too — the schedule can re-enter overload mid-
    /// epoch, and a grant is a *ceiling*, not a commitment to draw.
    pub fn headroom_request(&self) -> Watts {
        if self.mode == SprintMode::Ended {
            Watts::ZERO
        } else {
            Watts(self.cfg.overloaded().0 - self.cfg.rated().0)
        }
    }

    /// Deterministic urgency of [`Self::headroom_request`], derived
    /// purely from allocator state: baseline 1, plus 1 while the
    /// schedule is actually overloading, plus the batch-budget pressure
    /// (how much of the feasible batch range the allocator is asking
    /// for).
    pub fn headroom_priority(&self) -> f64 {
        let targets = self.allocator.targets();
        let (lo, hi) = self.allocator.p_batch_bounds();
        let span = (hi.0 - lo.0).max(1.0);
        let pressure = ((targets.p_batch.0 - lo.0) / span).clamp(0.0, 1.0);
        1.0 + pressure + if targets.overloading { 1.0 } else { 0.0 }
    }

    /// Install the market's answer: a grant of `g` headroom watts caps
    /// every breaker-power target at `rated + g` until the next round;
    /// `None` removes the cap (the single-rack default — with no cap
    /// installed, [`Self::step`] is bit-identical to the pre-datacenter
    /// supervisor). An ample grant (`g ≥ overloaded − rated`) is also
    /// bit-transparent, because `min(p_cb, cap)` returns `p_cb` exactly.
    pub fn apply_feeder_grant(&mut self, grant: Option<Watts>) {
        self.feeder_cap = grant.map(|g| {
            assert!(g.0 >= 0.0 && g.is_finite(), "invalid headroom grant");
            Watts(self.cfg.rated().0 + g.0)
        });
    }

    /// The currently installed breaker-power ceiling, if any.
    pub fn feeder_cap(&self) -> Option<Watts> {
        self.feeder_cap
    }

    /// Apply the grid nudge, the market ceiling and any curtailment cap
    /// to a breaker-power target. With no regulation delta, no feeder
    /// cap and no curtailment this is the exact identity — the grid
    /// layer is bit-transparent when no signal is active.
    fn cap_p_cb(&self, p_cb: Watts) -> Watts {
        // Frequency-regulation dispatches nudge the effective budget
        // symmetrically before any ceiling is applied.
        let shifted = match self.active_grid.reg_delta {
            Some(d) => Watts((p_cb.0 + d.0).max(0.0)),
            None => p_cb,
        };
        let capped = match self.feeder_cap {
            Some(cap) => Watts(shifted.0.min(cap.0)),
            None => shifted,
        };
        match self.active_grid.curtail_cap {
            Some(cap) => Watts(capped.0.min(cap.0)),
            None => capped,
        }
    }

    /// Deadline-aware batch triage under a curtailment cap: start every
    /// batch core at the DVFS floor, then grant frequency in ascending
    /// job-deadline order while the marginal model watts still fit what
    /// the cap leaves after the interactive estimate and a guard band.
    /// Nearest-deadline batches are drained first; relaxed jobs ride out
    /// the curtailment at the floor. Returns the per-core commands and
    /// the model watts the plan spends.
    fn triage_batch(
        &self,
        cap: Watts,
        p_inter: Watts,
        inputs: &SprintConInputs<'_>,
    ) -> (Vec<f64>, Watts) {
        let fmin = self.cfg.server.freq_scale.min;
        let fmax = self.cfg.server.freq_scale.max.0;
        let bpc = self.cfg.batch_cores_per_server() as f64;
        let models = self.server_ctrl.batch_models();
        let n = self.server_ctrl.num_channels();
        let mut freqs = vec![fmin.0; n];
        let p_floor: f64 = models.iter().map(|m| m.predict(fmin).0).sum();
        let mut left = (cap.0 - p_inter.0 - GRID_TRIAGE_GUARD_W - p_floor).max(0.0);
        let mut spent = p_floor;
        // Nearest deadline first; the core index breaks ties so the plan
        // is deterministic.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            inputs.jobs[a]
                .deadline
                .0
                .total_cmp(&inputs.jobs[b].deadline.0)
                .then(a.cmp(&b))
        });
        for i in order {
            if left <= 0.0 {
                break;
            }
            let job = &inputs.jobs[i];
            let f_want = match job.required_rate(self.now) {
                Some(r) if r <= 0.0 => fmin.0,
                None => fmax,
                Some(r) => job.model.freq_for_rate(r.min(1.0)).unwrap_or(fmax),
            }
            .clamp(fmin.0, fmax);
            if f_want <= fmin.0 {
                continue;
            }
            let k = models[i / self.cfg.batch_cores_per_server()].k;
            if k <= 0.0 {
                freqs[i] = f_want;
                continue;
            }
            // Raising one core by Δf raises its server's mean batch
            // frequency by Δf / cores, hence model watts by k·Δf / cores.
            let marginal = k * (f_want - fmin.0) / bpc;
            let granted = marginal.min(left);
            freqs[i] = (fmin.0 + granted * bpc / k).min(f_want);
            left -= granted;
            spent += granted;
        }
        (freqs, Watts(spent))
    }

    /// Degradation-ladder rungs 1–2: classify the raw measurement and
    /// replace it when the sensor misbehaves — hold the last good reading
    /// within the staleness deadline, then fall back to `p_model_est`
    /// (interactive model + batch model, the best open-loop estimate).
    /// Returns the value the controllers should consume and whether the
    /// sensor is currently considered faulty.
    fn sanitize_p_total(&mut self, raw: Watts, dt: Seconds, p_model_est: Watts) -> (Watts, bool) {
        let fault: Option<&'static str> = if !raw.is_finite() {
            Some("dropout")
        } else {
            if self.last_raw_p_total == Some(raw) {
                self.repeat_run += 1;
            } else {
                self.repeat_run = 0;
                self.last_raw_p_total = Some(raw);
            }
            if self.repeat_run >= self.cfg.stuck_sensor_periods {
                Some("stuck_sensor")
            } else if raw.0 > self.cfg.spike_reject_above.0 {
                Some("spike_rejected")
            } else {
                None
            }
        };
        match fault {
            None => {
                self.last_good_p_total = Some(raw);
                self.stale_for = Seconds::ZERO;
                (raw, false)
            }
            Some(kind) => {
                self.stale_for += dt;
                telemetry::counter_add("degraded.measurement_hold", 1);
                if telemetry::enabled() {
                    telemetry::counter_add(&format!("degraded.{kind}"), 1);
                }
                let held = if self.stale_for.0 <= self.cfg.measurement_hold_max.0 {
                    self.last_good_p_total
                } else {
                    None
                };
                let value = match held {
                    Some(v) => v,
                    None => {
                        // Past the staleness deadline (or faulty from the
                        // very first period): the model estimate is the
                        // only feedback left. It misses the fan draw,
                        // which the widened guard band absorbs.
                        telemetry::counter_add("degraded.stale_fallback", 1);
                        p_model_est
                    }
                };
                (value, true)
            }
        }
    }

    fn update_mode(&mut self, inputs: &SprintConInputs<'_>, sensor_faulty: bool) {
        // Rung 4: sustained blind operation — no trustworthy reading for
        // longer than the blind bound. End the sprint rather than keep
        // overloading a breaker nobody is watching.
        if self.stale_for.0 > self.cfg.blind_sprint_end.0 && self.mode != SprintMode::Ended {
            telemetry::counter_add("degraded.sprint_ended_blind", 1);
            self.mode = SprintMode::Ended;
            return;
        }
        // Rung 2 (guard band): while the sensor is faulty, stop
        // overloading earlier — held/estimated feedback deserves less
        // trust near the trip budget.
        let stop = if sensor_faulty {
            self.cfg.trip_margin_stop - self.cfg.guard_band_widen
        } else {
            self.cfg.trip_margin_stop
        };
        let cb_stressed = !inputs.breaker_closed || inputs.breaker_margin >= stop;
        let ups_low = inputs.ups_soc <= self.cfg.soc_reserve;
        let curtailing = inputs.grid.curtail_cap.is_some();
        self.mode = match (self.mode, cb_stressed, ups_low) {
            (SprintMode::Ended, _, _) => SprintMode::Ended,
            (_, true, true) => SprintMode::Ended,
            // A live curtailment outranks the ordinary protections: the
            // rack is driven under the curtailed cap, which also rests
            // the breaker and spares the UPS. The two escalations above
            // stay terminal.
            _ if curtailing => SprintMode::GridCurtail,
            (_, true, false) => SprintMode::CbProtect,
            (_, false, true) => SprintMode::UpsConserve,
            (SprintMode::CbProtect, false, false) => SprintMode::Sprinting,
            (m, false, false) => {
                if m == SprintMode::UpsConserve {
                    // The UPS does not recharge mid-sprint; leaving
                    // conservation requires SoC above the reserve, which
                    // the guard above already established.
                    SprintMode::Sprinting
                } else {
                    SprintMode::Sprinting
                }
            }
        };
    }

    /// One control period (`dt` = `cfg.control_period`).
    pub fn step(&mut self, dt: Seconds, inputs: SprintConInputs<'_>) -> SprintConOutputs {
        assert_eq!(
            inputs.batch_freqs.len(),
            self.server_ctrl.num_channels(),
            "one frequency per batch core"
        );
        assert_eq!(inputs.jobs.len(), self.server_ctrl.num_channels());
        self.now += dt;
        self.last_queue = inputs.queue;
        self.active_grid = inputs.grid;

        // Price spikes raise the sprint-entry bar: the breaker must be
        // proportionally cooler before the schedule re-enters overload,
        // so sprinting on expensive energy needs a stronger case. At the
        // nominal multiplier (1.0) this writes the default bar back —
        // bit-identical to the pre-grid supervisor.
        self.allocator
            .set_sprint_entry_margin(SPRINT_ENTRY_MARGIN / inputs.grid.price_multiplier.max(1.0));

        // Sanitize the power measurement first: everything downstream —
        // allocator bias, MPC feedback, UPS deadbeat law — consumes the
        // sanitized value. On a healthy sensor it is bit-identical to the
        // raw reading.
        let p_inter = self.server_ctrl.interactive_power(inputs.interactive_util);
        let predicted = self
            .server_ctrl
            .model_predicted_batch_power(inputs.batch_freqs);
        let p_model_est = Watts(p_inter.0 + predicted.0);
        let (p_use, sensor_faulty) = self.sanitize_p_total(inputs.p_total, dt, p_model_est);
        if sensor_faulty && !self.sensor_degraded {
            telemetry::counter_add("degraded.guard_band_widened", 1);
        }
        self.sensor_degraded = sensor_faulty;

        // Feed the allocator its per-period interactive power estimate
        // and the feedback-vs-model bias, then advance its schedule.
        self.allocator.observe_interactive_power(p_inter);
        let p_fb = self
            .server_ctrl
            .feedback_power(p_use, inputs.interactive_util);
        self.allocator.observe_feedback_bias(p_fb, predicted);
        self.allocator
            .advance(self.now, dt, inputs.breaker_margin, inputs.jobs);

        let prev_mode = self.mode;
        self.update_mode(&inputs, sensor_faulty);
        if self.mode != prev_mode {
            if telemetry::enabled() {
                telemetry::counter_add("supervisor_mode_transitions", 1);
                telemetry::counter_add(
                    &format!(
                        "supervisor_transition.{}->{}",
                        prev_mode.label(),
                        self.mode.label()
                    ),
                    1,
                );
                telemetry::event(
                    "supervisor.mode_change",
                    &[
                        ("from", prev_mode.label().into()),
                        ("to", self.mode.label().into()),
                        ("t", self.now.0.into()),
                    ],
                );
            }
            self.ups_ctrl.reset();
            if matches!(
                self.mode,
                SprintMode::CbProtect | SprintMode::Ended | SprintMode::GridCurtail
            ) {
                // §IV-C: stop overloading a stressed breaker; a grid
                // curtailment is a forced un-sprint for the same reason.
                self.allocator.force_recovery();
            }
            if self.mode == SprintMode::GridCurtail && telemetry::enabled() {
                telemetry::counter_add("grid.forced_unsprint", 1);
            }
        }

        // Refresh progress weights every period (cheap) — the paper does
        // it whenever the allocator republishes; doing it here only
        // improves balance.
        self.server_ctrl.update_weights(self.now, inputs.jobs);

        let targets = self.allocator.targets();
        match self.mode {
            SprintMode::Sprinting | SprintMode::CbProtect => {
                // In CbProtect the allocator is already forced into
                // recovery, so targets.p_cb is the rated capacity.
                let p_cb = targets.p_cb.map(|p| self.cap_p_cb(p));
                let p_batch = targets.p_batch;
                let decision = self.server_ctrl.control(
                    p_use,
                    inputs.interactive_util,
                    p_batch,
                    inputs.batch_freqs,
                );
                let margin = if targets.overloading {
                    self.cfg.cb_target_margin
                } else {
                    self.cfg.cb_recovery_margin
                };
                let ups = match p_cb {
                    Some(target) => self.ups_ctrl.control(p_use, target * margin),
                    None => Watts::ZERO,
                };
                self.inter_freq = NormFreq::PEAK;
                SprintConOutputs {
                    batch_freqs: decision.freqs,
                    interactive_freq: NormFreq::PEAK,
                    ups_discharge: ups,
                    p_cb_target: p_cb,
                    p_batch_target: p_batch,
                    mode: self.mode,
                }
            }
            SprintMode::GridCurtail => {
                // Compliance target: the tightest active curtailment cap
                // (min-chained with the market ceiling and any regulation
                // nudge), never above the rated capacity — a curtailment
                // is a forced un-sprint.
                let cap = self.cap_p_cb(self.cfg.rated());
                // Deadline-aware batch triage: nearest-deadline jobs keep
                // running fast inside what the cap leaves over, everyone
                // else drops toward the DVFS floor.
                let (batch_freqs, p_batch_spent) = self.triage_batch(cap, p_inter, &inputs);
                // Interactive: while the request queue is hot (PR 7
                // measurement), the p99 protection outranks the energy
                // cut — interactive stays at peak and the UPS bridges the
                // gap, which is legitimate demand response. Once the
                // queue drains, throttle proportionally into the cap.
                let queue_hot = inputs
                    .queue
                    .is_some_and(|q| q.p99_s > GRID_QUEUE_P99_GUARD_S);
                if queue_hot {
                    self.inter_freq = NormFreq::PEAK;
                } else {
                    let fmin = self.cfg.server.freq_scale.min;
                    let p_inter_est = p_inter.0.max(1.0);
                    let excess = p_use.0 - cap.0;
                    let scale = 1.0 - excess / p_inter_est;
                    let f_new = (self.inter_freq.0 * scale.clamp(0.5, 1.05)).clamp(fmin.0, 1.0);
                    self.inter_freq = NormFreq(f_new);
                }
                // Deadbeat the breaker a few σ of monitor noise under the
                // cap; the UPS absorbs the descent transient and any
                // queue-protection residual until the throttles bite.
                let ups = self.ups_ctrl.control(p_use, cap * GRID_CB_MARGIN);
                SprintConOutputs {
                    batch_freqs,
                    interactive_freq: self.inter_freq,
                    ups_discharge: ups,
                    p_cb_target: Some(cap),
                    p_batch_target: p_batch_spent,
                    mode: self.mode,
                }
            }
            SprintMode::UpsConserve | SprintMode::Ended => {
                // Budget for the whole rack: P_cb while conserving the
                // UPS; the plain rated capacity once the sprint is over.
                let budget = if self.mode == SprintMode::UpsConserve {
                    self.cap_p_cb(targets.p_cb.unwrap_or(self.cfg.rated()))
                } else {
                    self.cfg.rated()
                };
                // Batch cores drop to the DVFS floor; interactive cores
                // are throttled proportionally until the measured total
                // fits the budget (feedback iterates every period).
                let fmin = self.cfg.server.freq_scale.min;
                let batch_freqs = vec![fmin.0; self.server_ctrl.num_channels()];
                let p_inter_est = p_inter.0.max(1.0);
                let excess = p_use.0 - budget.0;
                let scale = 1.0 - excess / p_inter_est;
                let f_new = (self.inter_freq.0 * scale.clamp(0.5, 1.05)).clamp(fmin.0, 1.0);
                self.inter_freq = NormFreq(f_new);
                // A residual trickle of UPS discharge covers what the
                // throttle has not yet absorbed (the battery clamps it
                // once truly empty).
                let ups = self.ups_ctrl.control(p_use, budget);
                SprintConOutputs {
                    batch_freqs,
                    interactive_freq: self.inter_freq,
                    ups_discharge: ups,
                    p_cb_target: Some(budget),
                    p_batch_target: Watts(0.0),
                    mode: self.mode,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::progress_model::ProgressModel;

    fn cfg() -> SprintConConfig {
        SprintConConfig::paper_default()
    }

    fn jobs(n: usize) -> Vec<BatchJob> {
        (0..n)
            .map(|i| {
                BatchJob::new(
                    format!("j{i}"),
                    ProgressModel::new(0.2),
                    400.0,
                    Seconds(900.0),
                )
            })
            .collect()
    }

    fn step_once(sc: &mut SprintCon, margin: f64, closed: bool, soc: f64) -> SprintConOutputs {
        let n = sc.server_controller().num_channels();
        let utils = vec![Utilization(0.6); sc.cfg.num_servers];
        let freqs = vec![0.6; n];
        let js = jobs(n);
        sc.step(
            Seconds(1.0),
            SprintConInputs {
                p_total: Watts(4200.0),
                interactive_util: &utils,
                batch_freqs: &freqs,
                jobs: &js,
                breaker_margin: margin,
                breaker_closed: closed,
                ups_soc: soc,
                queue: None,
                grid: ActiveGrid::default(),
            },
        )
    }

    #[test]
    fn nominal_step_sprints_at_peak_interactive() {
        let mut sc = SprintCon::new(cfg());
        let out = step_once(&mut sc, 0.1, true, 1.0);
        assert_eq!(out.mode, SprintMode::Sprinting);
        assert_eq!(out.interactive_freq, NormFreq::PEAK);
        assert_eq!(out.p_cb_target, Some(Watts(4000.0)));
        // UPS covers the measured excess over P_cb × the 0.99 cooling
        // margin: 4200 − 3960 = 240 W.
        assert!((out.ups_discharge.0 - 240.0).abs() < 1e-9);
        assert_eq!(out.batch_freqs.len(), 64);
        for f in &out.batch_freqs {
            assert!((0.2..=1.0).contains(f));
        }
    }

    #[test]
    fn hot_breaker_triggers_cb_protect() {
        let mut sc = SprintCon::new(cfg());
        let out = step_once(&mut sc, 0.97, true, 1.0);
        assert_eq!(out.mode, SprintMode::CbProtect);
        // Overload stopped: target back at rated; UPS covers the rest
        // (against rated × recovery margin: 4200 − 3200×0.98 = 1064 W).
        assert_eq!(out.p_cb_target, Some(Watts(3200.0)));
        assert!((out.ups_discharge.0 - 1064.0).abs() < 1e-9);
        // Interactive stays at peak — CbProtect spends UPS, not latency.
        assert_eq!(out.interactive_freq, NormFreq::PEAK);
        // Recovers once the breaker cools.
        let out2 = step_once(&mut sc, 0.01, true, 1.0);
        assert_eq!(out2.mode, SprintMode::Sprinting);
    }

    #[test]
    fn open_breaker_counts_as_stressed() {
        let mut sc = SprintCon::new(cfg());
        let out = step_once(&mut sc, 0.0, false, 1.0);
        assert_eq!(out.mode, SprintMode::CbProtect);
    }

    #[test]
    fn low_soc_triggers_conservation_and_throttles_interactive() {
        let mut sc = SprintCon::new(cfg());
        let mut out = step_once(&mut sc, 0.1, true, 0.02);
        assert_eq!(out.mode, SprintMode::UpsConserve);
        // Batch at the floor.
        for f in &out.batch_freqs {
            assert!((f - 0.2).abs() < 1e-12);
        }
        // Interactive throttles below peak within a few periods (total
        // 4.2 kW > budget 4.0 kW).
        for _ in 0..5 {
            out = step_once(&mut sc, 0.1, true, 0.02);
        }
        assert!(out.interactive_freq.0 < 1.0, "f={}", out.interactive_freq.0);
    }

    #[test]
    fn both_exhausted_ends_the_sprint_permanently() {
        let mut sc = SprintCon::new(cfg());
        let out = step_once(&mut sc, 0.99, true, 0.01);
        assert_eq!(out.mode, SprintMode::Ended);
        assert_eq!(out.p_cb_target, Some(Watts(3200.0)));
        // Ended is terminal even if conditions improve.
        let out2 = step_once(&mut sc, 0.0, true, 1.0);
        assert_eq!(out2.mode, SprintMode::Ended);
    }

    #[test]
    fn mode_change_resets_ups_filter() {
        let c = cfg();
        c.validate().expect("paper default is valid");
        let mut sc = SprintCon::new(c);
        sc.ups_ctrl = UpsPowerController::new(0.8);
        // Build up filter state while sprinting.
        step_once(&mut sc, 0.1, true, 1.0);
        assert!(sc.ups_ctrl.last_command().0 > 0.0);
        // Transition to CbProtect resets it (then recomputes).
        let out = step_once(&mut sc, 0.97, true, 1.0);
        assert_eq!(out.mode, SprintMode::CbProtect);
        assert!((out.ups_discharge.0 - 1064.0).abs() < 1e-9);
    }

    #[test]
    fn time_advances_with_steps() {
        let mut sc = SprintCon::new(cfg());
        for _ in 0..10 {
            step_once(&mut sc, 0.1, true, 1.0);
        }
        assert_eq!(sc.now(), Seconds(10.0));
    }

    #[test]
    fn feeder_grant_caps_the_breaker_target() {
        let mut sc = SprintCon::new(cfg());
        // 300 W of granted headroom: the overload target drops from
        // 4000 W to rated + 300 = 3500 W, and the UPS covers the rest.
        sc.apply_feeder_grant(Some(Watts(300.0)));
        assert_eq!(sc.feeder_cap(), Some(Watts(3500.0)));
        let out = step_once(&mut sc, 0.1, true, 1.0);
        assert_eq!(out.mode, SprintMode::Sprinting);
        assert_eq!(out.p_cb_target, Some(Watts(3500.0)));
        assert!((out.ups_discharge.0 - (4200.0 - 3500.0 * 0.99)).abs() < 1e-9);
    }

    #[test]
    fn ample_or_absent_grant_is_bit_transparent() {
        // The single-rack equivalence contract: no cap, a full-swing
        // grant, and a generous grant all reproduce the uncapped
        // commands bit for bit.
        let mut base = SprintCon::new(cfg());
        let o_base = step_once(&mut base, 0.1, true, 1.0);
        for grant in [Some(Watts(800.0)), Some(Watts(5000.0)), None] {
            let mut sc = SprintCon::new(cfg());
            sc.apply_feeder_grant(grant);
            let out = step_once(&mut sc, 0.1, true, 1.0);
            assert_eq!(out.p_cb_target, o_base.p_cb_target, "{grant:?}");
            assert_eq!(
                out.ups_discharge.0.to_bits(),
                o_base.ups_discharge.0.to_bits(),
                "{grant:?}"
            );
            assert_eq!(out.batch_freqs, o_base.batch_freqs, "{grant:?}");
        }
    }

    #[test]
    fn headroom_request_is_the_overload_swing_until_the_sprint_ends() {
        let mut sc = SprintCon::new(cfg());
        assert_eq!(sc.headroom_request(), Watts(800.0));
        assert!(sc.headroom_priority() >= 1.0);
        // Recovery phases keep requesting (the grant is a ceiling, and
        // the schedule can re-enter overload before the next round).
        step_once(&mut sc, 0.97, true, 1.0);
        assert_eq!(sc.mode(), SprintMode::CbProtect);
        assert_eq!(sc.headroom_request(), Watts(800.0));
        // Ended is terminal: nothing to bid for.
        step_once(&mut sc, 0.99, true, 0.01);
        assert_eq!(sc.mode(), SprintMode::Ended);
        assert_eq!(sc.headroom_request(), Watts::ZERO);
    }

    #[test]
    fn zero_grant_pins_the_rack_at_rated() {
        let mut sc = SprintCon::new(cfg());
        sc.apply_feeder_grant(Some(Watts::ZERO));
        let out = step_once(&mut sc, 0.1, true, 1.0);
        assert_eq!(out.p_cb_target, Some(Watts(3200.0)));
    }

    /// Like `step_once`, but with an arbitrary power-monitor reading.
    fn step_with_p(
        sc: &mut SprintCon,
        p_total: Watts,
        margin: f64,
        closed: bool,
        soc: f64,
    ) -> SprintConOutputs {
        let n = sc.server_controller().num_channels();
        let utils = vec![Utilization(0.6); sc.cfg.num_servers];
        let freqs = vec![0.6; n];
        let js = jobs(n);
        sc.step(
            Seconds(1.0),
            SprintConInputs {
                p_total,
                interactive_util: &utils,
                batch_freqs: &freqs,
                jobs: &js,
                breaker_margin: margin,
                breaker_closed: closed,
                ups_soc: soc,
                queue: None,
                grid: ActiveGrid::default(),
            },
        )
    }

    #[test]
    fn dropout_holds_last_good_then_ends_the_sprint_blind() {
        let mut sc = SprintCon::new(cfg());
        let healthy = step_with_p(&mut sc, Watts(4200.0), 0.1, true, 1.0);
        assert!((healthy.ups_discharge.0 - 240.0).abs() < 1e-9);
        // First dropout period: the held reading reproduces the healthy
        // command exactly (rung 1).
        let held = step_with_p(&mut sc, Watts(f64::NAN), 0.1, true, 1.0);
        assert_eq!(held.mode, SprintMode::Sprinting);
        assert!((held.ups_discharge.0 - 240.0).abs() < 1e-9);
        // Sustained blindness: past `blind_sprint_end` (30 s) the
        // supervisor ends the sprint rather than overload unwatched
        // (rung 4). Every output stays finite throughout.
        let mut ended_at = None;
        for i in 2..45 {
            let out = step_with_p(&mut sc, Watts(f64::NAN), 0.1, true, 1.0);
            assert!(out.ups_discharge.is_finite());
            assert!(out.batch_freqs.iter().all(|f| f.is_finite()));
            if out.mode == SprintMode::Ended {
                ended_at = Some(i);
                break;
            }
        }
        let ended_at = ended_at.expect("blind sprint must end");
        assert!(
            (31..=32).contains(&ended_at),
            "ended after {ended_at} blind periods, expected ~31"
        );
    }

    #[test]
    fn guard_band_widens_while_the_sensor_is_faulty() {
        // Margin 0.85 is safe with a healthy sensor (stop = 0.95)…
        let mut sc = SprintCon::new(cfg());
        let out = step_with_p(&mut sc, Watts(4200.0), 0.85, true, 1.0);
        assert_eq!(out.mode, SprintMode::Sprinting);
        // …but inside the widened band (0.95 − 0.15 = 0.80) during a
        // dropout: the supervisor stops overloading early (rung 2).
        let out = step_with_p(&mut sc, Watts(f64::NAN), 0.85, true, 1.0);
        assert_eq!(out.mode, SprintMode::CbProtect);
        // Sensor back, breaker cooled: normal operation resumes.
        let out = step_with_p(&mut sc, Watts(4210.0), 0.1, true, 1.0);
        assert_eq!(out.mode, SprintMode::Sprinting);
    }

    #[test]
    fn implausible_spikes_are_rejected_not_acted_on() {
        let mut sc = SprintCon::new(cfg());
        let healthy = step_with_p(&mut sc, Watts(4200.0), 0.1, true, 1.0);
        // A 25 kW reading (above `spike_reject_above`) would demand a
        // huge UPS discharge; instead the held value keeps the command
        // where the healthy one was.
        let spiked = step_with_p(&mut sc, Watts(25_000.0), 0.1, true, 1.0);
        assert_eq!(spiked.mode, SprintMode::Sprinting);
        assert!(
            (spiked.ups_discharge.0 - healthy.ups_discharge.0).abs() < 1e-9,
            "spike leaked into the UPS command: {} vs {}",
            spiked.ups_discharge,
            healthy.ups_discharge
        );
    }

    #[test]
    fn stuck_sensor_is_flagged_after_a_repeat_run() {
        // Bit-identical readings are fine for `stuck_sensor_periods`
        // periods, then treated as a fault: with margin 0.85 the widened
        // guard band flips the mode even though the reading never moves.
        let mut sc = SprintCon::new(cfg());
        for _ in 0..5 {
            let out = step_with_p(&mut sc, Watts(4200.0), 0.85, true, 1.0);
            assert_eq!(out.mode, SprintMode::Sprinting);
        }
        let out = step_with_p(&mut sc, Watts(4200.0), 0.85, true, 1.0);
        assert_eq!(out.mode, SprintMode::CbProtect);
        // A changing reading clears the run immediately.
        let out = step_with_p(&mut sc, Watts(4205.0), 0.01, true, 1.0);
        assert_eq!(out.mode, SprintMode::Sprinting);
    }

    // --- grid-responsive mode (curtailment / price / regulation) ---

    /// Like `step_once`, but with explicit grid signals and queue state.
    fn step_grid(
        sc: &mut SprintCon,
        grid: ActiveGrid,
        queue: Option<QueueMeasurement>,
    ) -> SprintConOutputs {
        let n = sc.server_controller().num_channels();
        let utils = vec![Utilization(0.6); sc.cfg.num_servers];
        let freqs = vec![0.6; n];
        let js = jobs(n);
        sc.step(
            Seconds(1.0),
            SprintConInputs {
                p_total: Watts(4200.0),
                interactive_util: &utils,
                batch_freqs: &freqs,
                jobs: &js,
                breaker_margin: 0.1,
                breaker_closed: true,
                ups_soc: 1.0,
                queue,
                grid,
            },
        )
    }

    fn curtail(cap: f64) -> ActiveGrid {
        ActiveGrid {
            curtail_cap: Some(Watts(cap)),
            curtail_deadline: Some(Seconds(30.0)),
            ..ActiveGrid::default()
        }
    }

    #[test]
    fn curtailment_forces_grid_curtail_and_caps_the_target() {
        let mut sc = SprintCon::new(cfg());
        let out = step_grid(&mut sc, curtail(3000.0), None);
        assert_eq!(out.mode, SprintMode::GridCurtail);
        assert_eq!(out.p_cb_target, Some(Watts(3000.0)));
        // The UPS deadbeats the breaker under the cap with margin.
        assert!((out.ups_discharge.0 - (4200.0 - 3000.0 * GRID_CB_MARGIN)).abs() < 1e-9);
        // Clearing the curtailment resumes the sprint.
        let out2 = step_grid(&mut sc, ActiveGrid::default(), None);
        assert_eq!(out2.mode, SprintMode::Sprinting);
    }

    #[test]
    fn curtailment_never_raises_the_target_above_rated() {
        // A cap above rated is still a forced un-sprint: the rack drops
        // to rated, not to the (looser) cap.
        let mut sc = SprintCon::new(cfg());
        let out = step_grid(&mut sc, curtail(3600.0), None);
        assert_eq!(out.mode, SprintMode::GridCurtail);
        assert_eq!(out.p_cb_target, Some(Watts(3200.0)));
    }

    #[test]
    fn hot_queue_keeps_interactive_at_peak_during_curtailment() {
        let hot = QueueMeasurement {
            depth: 40.0,
            p99_s: 0.6,
            drop_rate: 0.0,
        };
        let mut sc = SprintCon::new(cfg());
        for _ in 0..5 {
            let out = step_grid(&mut sc, curtail(3000.0), Some(hot));
            assert_eq!(out.interactive_freq, NormFreq::PEAK);
        }
        // With the queue drained the throttle engages within a few
        // periods (4.2 kW measured vs a 3.0 kW cap).
        let cool = QueueMeasurement {
            depth: 0.1,
            p99_s: 0.01,
            drop_rate: 0.0,
        };
        let mut out = step_grid(&mut sc, curtail(3000.0), Some(cool));
        for _ in 0..5 {
            out = step_grid(&mut sc, curtail(3000.0), Some(cool));
        }
        assert!(out.interactive_freq.0 < 1.0, "f={}", out.interactive_freq.0);
    }

    #[test]
    fn triage_drains_nearest_deadline_batches_first() {
        let mut sc = SprintCon::new(cfg());
        let n = sc.server_controller().num_channels();
        // Light interactive load (~1.3 kW est.) leaves headroom under the
        // 3 kW cap beyond the batch floor; at util 0.6 the cap is fully
        // consumed and every core pins to fmin.
        let utils = vec![Utilization(0.05); sc.cfg.num_servers];
        let freqs = vec![0.6; n];
        // Half the cores carry urgent work (short deadline, lots left),
        // half are relaxed — under a tight cap only the urgent half may
        // rise above the floor.
        let js: Vec<BatchJob> = (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    BatchJob::new(
                        format!("urgent{i}"),
                        ProgressModel::new(0.2),
                        150.0,
                        Seconds(200.0),
                    )
                } else {
                    BatchJob::new(
                        format!("relaxed{i}"),
                        ProgressModel::new(0.2),
                        10.0,
                        Seconds(36000.0),
                    )
                }
            })
            .collect();
        let out = sc.step(
            Seconds(1.0),
            SprintConInputs {
                p_total: Watts(4200.0),
                interactive_util: &utils,
                batch_freqs: &freqs,
                jobs: &js,
                breaker_margin: 0.1,
                breaker_closed: true,
                ups_soc: 1.0,
                queue: None,
                grid: curtail(3000.0),
            },
        );
        assert_eq!(out.mode, SprintMode::GridCurtail);
        let fmin = sc.cfg.server.freq_scale.min.0;
        let urgent_above: usize = out
            .batch_freqs
            .iter()
            .step_by(2)
            .filter(|f| **f > fmin + 1e-9)
            .count();
        assert!(urgent_above > 0, "urgent jobs must get frequency grants");
        for (i, f) in out.batch_freqs.iter().enumerate() {
            if i % 2 == 1 {
                assert!(
                    (*f - fmin).abs() < 1e-9,
                    "relaxed core {i} must stay at the floor, got {f}"
                );
            }
        }
        assert!(out.p_batch_target.0 > 0.0);
    }

    #[test]
    fn regulation_delta_nudges_p_cb_symmetrically() {
        // Regulation-down: 200 W out of the overload target.
        let down = ActiveGrid {
            reg_delta: Some(Watts(-200.0)),
            ..ActiveGrid::default()
        };
        let mut sc = SprintCon::new(cfg());
        let out = step_grid(&mut sc, down, None);
        assert_eq!(out.mode, SprintMode::Sprinting);
        assert_eq!(out.p_cb_target, Some(Watts(3800.0)));
        // Regulation-up is the mirror image.
        let up = ActiveGrid {
            reg_delta: Some(Watts(200.0)),
            ..ActiveGrid::default()
        };
        let mut sc = SprintCon::new(cfg());
        let out = step_grid(&mut sc, up, None);
        assert_eq!(out.p_cb_target, Some(Watts(4200.0)));
    }

    #[test]
    fn transient_grid_signals_leave_no_residue() {
        // A curtailment that comes and goes must leave the supervisor in
        // the same mode with the cap chain and entry bar reset when the
        // signal clears. The one deliberate carry-over is the CB schedule:
        // the forced un-sprint pushed it into its recovery phase (exactly
        // like CbProtect does), so the target is rated, not overloaded.
        let mut touched = SprintCon::new(cfg());
        step_grid(&mut touched, curtail(3000.0), None);
        let spike = ActiveGrid {
            price_multiplier: 4.0,
            ..ActiveGrid::default()
        };
        step_grid(&mut touched, spike, None);
        let after = step_grid(&mut touched, ActiveGrid::default(), None);
        assert_eq!(after.mode, SprintMode::Sprinting);
        assert_eq!(after.p_cb_target, Some(Watts(3200.0)));
        assert_eq!(touched.feeder_cap(), None);
    }
}
