//! Power bidding (§IV-C): when the energy storage is running out,
//! `P_cb` becomes the power target for *all* workloads and "different
//! workloads can bid for power as in \[2\]".
//!
//! This module implements that allocation primitive: each core submits a
//! bid (demand × priority); the budget is spent greedily down the bid
//! ranking using the linear per-core power model, with the marginal core
//! receiving the fractional frequency that exhausts the budget. It is
//! the model-based, single-owner analogue of the baselines' cooperative
//! threshold — used by the supervisor's conservation modes and available
//! to downstream users as a standalone API.
//!
//! The datacenter generalization reuses the same auction shape one and
//! two levels up: racks bid watts of *overload headroom* against the
//! shared PDU and feeder edges ([`HeadroomBid`] /
//! [`allocate_headroom`] / [`allocate_headroom_two_level`]), with the
//! §IV-C core auction staying the leaf. Both levels keep the leaf's
//! determinism contract — greedy by value, ties broken by id, the
//! marginal bidder granted the exact fraction that exhausts the budget
//! — so a market round is a pure function of its inputs and safe to run
//! at supervisor boundaries between parallel rack shards.

use powersim::units::Watts;

/// One core's bid for power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBid {
    /// Caller-chosen core identifier (returned in the allocation).
    pub core: usize,
    /// Demand signal in `[0, 1]` — typically measured utilization.
    pub demand: f64,
    /// Workload-class priority multiplier (e.g. interactive > batch).
    pub priority: f64,
    /// Watts per unit normalized frequency for this core (model `k`).
    pub watts_per_freq: f64,
}

impl PowerBid {
    /// The bid value the auction ranks by.
    pub fn value(&self) -> f64 {
        self.demand.max(0.0) * self.priority.max(0.0)
    }
}

/// Result of one auction round.
#[derive(Debug, Clone)]
pub struct BidAllocation {
    /// `(core, frequency)` pairs in the input order.
    pub freqs: Vec<(usize, f64)>,
    /// Power the model predicts this allocation draws above the floor.
    pub spent: Watts,
    /// Cores granted more than the floor frequency.
    pub granted: usize,
}

/// Allocate `budget` watts of *dynamic* power (above the all-cores-at-
/// `f_floor` baseline) across the bidders.
///
/// Cores are ranked by bid value (ties broken by core id for
/// determinism); each winner is raised from `f_floor` toward `f_peak`,
/// costing `watts_per_freq × Δf`, until the budget runs out; the
/// marginal core gets the exact fractional frequency that spends the
/// remainder.
pub fn allocate_power_bids(
    bids: &[PowerBid],
    budget: Watts,
    f_floor: f64,
    f_peak: f64,
) -> BidAllocation {
    assert!(
        (0.0..=1.0).contains(&f_floor) && f_floor <= f_peak && f_peak <= 1.0,
        "invalid frequency range"
    );
    assert!(
        bids.iter().all(|b| b.watts_per_freq > 0.0),
        "power slopes must be positive"
    );
    let mut order: Vec<usize> = (0..bids.len()).collect();
    order.sort_by(|&a, &b| {
        bids[b]
            .value()
            .total_cmp(&bids[a].value())
            .then(bids[a].core.cmp(&bids[b].core))
    });
    let mut freqs: Vec<(usize, f64)> = bids.iter().map(|b| (b.core, f_floor)).collect();
    let mut remaining = budget.0.max(0.0);
    let mut granted = 0;
    for &i in &order {
        if remaining <= 0.0 {
            break;
        }
        let full_cost = bids[i].watts_per_freq * (f_peak - f_floor);
        if full_cost <= remaining {
            freqs[i].1 = f_peak;
            remaining -= full_cost;
            if f_peak > f_floor {
                granted += 1;
            }
        } else {
            let df = remaining / bids[i].watts_per_freq;
            freqs[i].1 = (f_floor + df).min(f_peak);
            remaining = 0.0;
            if df > 0.0 {
                granted += 1;
            }
            break;
        }
    }
    BidAllocation {
        spent: Watts(budget.0.max(0.0) - remaining),
        freqs,
        granted,
    }
}

/// One participant's bid for shared overload headroom (a rack bidding at
/// its PDU, or a PDU bidding at the feeder).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeadroomBid {
    /// Caller-chosen participant identifier (rack or PDU index); also
    /// the deterministic tie-break key.
    pub id: usize,
    /// Watts of headroom requested above the participant's rated draw.
    pub request: Watts,
    /// Urgency multiplier (deadline pressure, batch backlog, …).
    pub priority: f64,
}

impl HeadroomBid {
    /// The value the auction ranks by: watts wanted × urgency.
    pub fn value(&self) -> f64 {
        self.request.0.max(0.0) * self.priority.max(0.0)
    }
}

/// Result of one headroom auction round.
#[derive(Debug, Clone, PartialEq)]
pub struct HeadroomAllocation {
    /// Granted watts, in bid input order. `Σ grants ≤ budget` always.
    pub grants: Vec<Watts>,
    /// Total watts handed out.
    pub spent: Watts,
    /// Bidders that received a positive grant.
    pub granted: usize,
}

/// Auction `budget` watts of shared headroom across the bidders: greedy
/// full grants down the value ranking (ties broken by `id`), with the
/// marginal bidder receiving the exact fraction that exhausts the
/// budget. Mirrors [`allocate_power_bids`] with watts as the currency
/// instead of frequency.
pub fn allocate_headroom(bids: &[HeadroomBid], budget: Watts) -> HeadroomAllocation {
    let mut order = Vec::new();
    let mut grants = Vec::new();
    let (spent, granted) = allocate_headroom_core(bids, budget, &mut order, &mut grants);
    HeadroomAllocation {
        grants,
        spent,
        granted,
    }
}

/// The single-level greedy auction over caller-owned scratch: `order`
/// and `grants` are cleared and refilled, never shrunk, so a reused
/// workspace round allocates nothing once warm. Returns
/// `(spent, granted)`; the grants land in `grants` in bid input order.
/// [`allocate_headroom`] is this plus a fresh pair of Vecs, so the
/// ranking and tie-break semantics are one piece of code, not two.
fn allocate_headroom_core(
    bids: &[HeadroomBid],
    budget: Watts,
    order: &mut Vec<usize>,
    grants: &mut Vec<Watts>,
) -> (Watts, usize) {
    assert!(budget.is_finite(), "budget must be finite");
    assert!(
        bids.iter()
            .all(|b| b.request.is_finite() && b.priority.is_finite()),
        "bids must be finite"
    );
    order.clear();
    order.extend(0..bids.len());
    order.sort_by(|&a, &b| {
        bids[b]
            .value()
            .total_cmp(&bids[a].value())
            .then(bids[a].id.cmp(&bids[b].id))
    });
    grants.clear();
    grants.resize(bids.len(), Watts::ZERO);
    let mut remaining = budget.0.max(0.0);
    let mut granted = 0;
    for &i in &*order {
        if remaining <= 0.0 {
            break;
        }
        let want = bids[i].request.0.max(0.0);
        if want <= 0.0 {
            continue;
        }
        let grant = want.min(remaining);
        grants[i] = Watts(grant);
        remaining -= grant;
        granted += 1;
        if grant < want {
            break; // marginal bidder exhausted the budget
        }
    }
    (Watts(budget.0.max(0.0) - remaining), granted)
}

/// The two-level feeder → PDU → rack market round. `pdu_of[i]` names
/// the PDU that feeds the rack behind `bids[i]`; `pdu_caps[p]` is the
/// headroom PDU `p`'s own edge can carry. Level 1 auctions the feeder
/// budget across PDUs (each PDU bids the sum of its racks' requests,
/// capped at its edge headroom, at their demand-weighted mean
/// priority); level 2 re-auctions each PDU's grant across its own
/// racks. Grants come back in bid input order with
/// `Σ grants ≤ feeder_budget` and per-PDU sums within both the PDU's
/// cap and its level-1 grant — the conservation invariant the
/// datacenter engine asserts at every supervisor boundary.
pub fn allocate_headroom_two_level(
    bids: &[HeadroomBid],
    pdu_of: &[usize],
    pdu_caps: &[Watts],
    feeder_budget: Watts,
) -> HeadroomAllocation {
    let mut ws = MarketWorkspace::new();
    let outcome = allocate_headroom_two_level_with(&mut ws, bids, pdu_of, pdu_caps, feeder_budget);
    HeadroomAllocation {
        grants: std::mem::take(&mut ws.grants),
        spent: outcome.spent,
        granted: outcome.granted,
    }
}

/// Reusable scratch for [`allocate_headroom_two_level_with`] — the
/// market-round analogue of `control::qp::QpWorkspace`. Every Vec a
/// two-level round needs lives here, cleared and refilled per round but
/// never shrunk, so a long campaign's market clearing allocates only on
/// the first round (or when the fleet grows). Reuse is semantically
/// invisible: a warm workspace produces bit-identical grants to a fresh
/// one (see the `workspace_reuse_is_deterministic` test).
#[derive(Debug, Clone, Default)]
pub struct MarketWorkspace {
    /// Ranking scratch shared by the level-1 and per-PDU auctions.
    order: Vec<usize>,
    /// Per-PDU aggregate demand (Σ member requests, clamped ≥ 0).
    pdu_demand: Vec<f64>,
    /// Per-PDU aggregate bid value (Σ member values).
    pdu_value: Vec<f64>,
    /// Level-1 bids, one per PDU.
    pdu_bids: Vec<HeadroomBid>,
    /// Level-1 grants, one per PDU.
    pdu_grants: Vec<Watts>,
    /// Global bid indices of the PDU currently clearing at level 2.
    members: Vec<usize>,
    /// That PDU's member bids, densely packed for the local auction.
    member_bids: Vec<HeadroomBid>,
    /// That PDU's local grants (member order).
    member_grants: Vec<Watts>,
    /// Final grants in bid input order — read via [`Self::grants`].
    grants: Vec<Watts>,
}

impl MarketWorkspace {
    pub fn new() -> Self {
        Self::default()
    }

    /// Grants from the most recent round, in bid input order. Valid
    /// until the next `allocate_headroom_two_level_with` call.
    pub fn grants(&self) -> &[Watts] {
        &self.grants
    }
}

/// What a zero-alloc market round hands back by value; the grants stay
/// in the workspace ([`MarketWorkspace::grants`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarketOutcome {
    /// Total watts handed out. `spent ≤ feeder_budget` always.
    pub spent: Watts,
    /// Bidders that received a positive grant.
    pub granted: usize,
}

/// [`allocate_headroom_two_level`] over a reusable [`MarketWorkspace`]:
/// identical auction semantics (same aggregation, ranking, tie-breaks,
/// and fractional marginal grants — the Vec-returning entry point
/// delegates here), but a warm workspace makes the round allocation-
/// free. Grants land in `ws.grants()` in bid input order.
pub fn allocate_headroom_two_level_with(
    ws: &mut MarketWorkspace,
    bids: &[HeadroomBid],
    pdu_of: &[usize],
    pdu_caps: &[Watts],
    feeder_budget: Watts,
) -> MarketOutcome {
    assert_eq!(bids.len(), pdu_of.len(), "bid/PDU map shape mismatch");
    let num_pdus = pdu_caps.len();
    assert!(
        pdu_of.iter().all(|&p| p < num_pdus),
        "PDU index out of range"
    );
    // Level-1 bids: one per PDU, aggregated from its member racks.
    ws.pdu_demand.clear();
    ws.pdu_demand.resize(num_pdus, 0.0);
    ws.pdu_value.clear();
    ws.pdu_value.resize(num_pdus, 0.0);
    for (b, &p) in bids.iter().zip(pdu_of) {
        ws.pdu_demand[p] += b.request.0.max(0.0);
        ws.pdu_value[p] += b.value();
    }
    ws.pdu_bids.clear();
    for (p, cap) in pdu_caps.iter().enumerate() {
        let capped = ws.pdu_demand[p].min(cap.0.max(0.0));
        let mean_priority = if ws.pdu_demand[p] > 0.0 {
            ws.pdu_value[p] / ws.pdu_demand[p]
        } else {
            0.0
        };
        ws.pdu_bids.push(HeadroomBid {
            id: p,
            request: Watts(capped),
            priority: mean_priority,
        });
    }
    allocate_headroom_core(
        &ws.pdu_bids,
        feeder_budget,
        &mut ws.order,
        &mut ws.pdu_grants,
    );

    // Level 2: each PDU re-auctions its grant across its own racks.
    ws.grants.clear();
    ws.grants.resize(bids.len(), Watts::ZERO);
    let mut spent = 0.0;
    let mut granted = 0;
    for p in 0..num_pdus {
        let budget = ws.pdu_grants[p];
        if budget.0 <= 0.0 {
            continue;
        }
        ws.members.clear();
        ws.member_bids.clear();
        for (i, &q) in pdu_of.iter().enumerate() {
            if q == p {
                ws.members.push(i);
                ws.member_bids.push(bids[i]);
            }
        }
        let (local_spent, _) = allocate_headroom_core(
            &ws.member_bids,
            budget,
            &mut ws.order,
            &mut ws.member_grants,
        );
        for (&i, g) in ws.members.iter().zip(&ws.member_grants) {
            ws.grants[i] = *g;
            if g.0 > 0.0 {
                granted += 1;
            }
        }
        spent += local_spent.0;
    }
    MarketOutcome {
        spent: Watts(spent),
        granted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bids(n: usize) -> Vec<PowerBid> {
        (0..n)
            .map(|i| PowerBid {
                core: i,
                demand: 0.5 + 0.05 * (i as f64),
                priority: 1.0,
                watts_per_freq: 15.0,
            })
            .collect()
    }

    #[test]
    fn zero_budget_leaves_everyone_at_floor() {
        let a = allocate_power_bids(&bids(4), Watts(0.0), 0.2, 1.0);
        assert!(a.freqs.iter().all(|&(_, f)| f == 0.2));
        assert_eq!(a.granted, 0);
        assert_eq!(a.spent, Watts(0.0));
    }

    #[test]
    fn ample_budget_grants_everyone_peak() {
        let a = allocate_power_bids(&bids(4), Watts(1e6), 0.2, 1.0);
        assert!(a.freqs.iter().all(|&(_, f)| f == 1.0));
        assert_eq!(a.granted, 4);
        // Spent exactly 4 × 15 × 0.8.
        assert!((a.spent.0 - 48.0).abs() < 1e-9);
    }

    #[test]
    fn highest_bids_win_first() {
        // Budget covers one full grant plus half of another.
        let a = allocate_power_bids(&bids(4), Watts(18.0), 0.2, 1.0);
        // Core 3 has the biggest demand → full peak.
        assert_eq!(a.freqs[3], (3, 1.0));
        // Core 2 gets the fractional remainder: 18 − 12 = 6 W → Δf 0.4.
        assert!((a.freqs[2].1 - 0.6).abs() < 1e-9);
        assert_eq!(a.freqs[1].1, 0.2);
        assert_eq!(a.freqs[0].1, 0.2);
        assert_eq!(a.granted, 2);
        assert!((a.spent.0 - 18.0).abs() < 1e-9);
    }

    #[test]
    fn priority_multiplier_overrides_demand() {
        let mut b = bids(2);
        b[0].demand = 0.4;
        b[0].priority = 3.0; // interactive-style boost: bid 1.2
        b[1].demand = 0.9;
        b[1].priority = 1.0; // bid 0.9
        let a = allocate_power_bids(&b, Watts(12.0), 0.2, 1.0);
        assert_eq!(a.freqs[0].1, 1.0, "prioritized core wins");
        assert_eq!(a.freqs[1].1, 0.2);
    }

    #[test]
    fn ties_break_deterministically_by_core_id() {
        let b: Vec<PowerBid> = (0..3)
            .map(|i| PowerBid {
                core: i,
                demand: 0.5,
                priority: 1.0,
                watts_per_freq: 15.0,
            })
            .collect();
        let a = allocate_power_bids(&b, Watts(12.0), 0.2, 1.0);
        assert_eq!(a.freqs[0].1, 1.0);
        assert_eq!(a.freqs[1].1, 0.2);
    }

    #[test]
    fn budget_is_never_exceeded() {
        for budget in [0.0, 5.0, 17.3, 36.0, 100.0] {
            let a = allocate_power_bids(&bids(5), Watts(budget), 0.2, 1.0);
            let cost: f64 = a.freqs.iter().map(|&(_, f)| 15.0 * (f - 0.2)).sum();
            assert!(cost <= budget + 1e-9, "budget {budget}: cost {cost}");
            assert!((cost - a.spent.0).abs() < 1e-9);
        }
    }

    #[test]
    fn heterogeneous_slopes_charge_correctly() {
        let b = vec![
            PowerBid {
                core: 0,
                demand: 1.0,
                priority: 1.0,
                watts_per_freq: 30.0,
            },
            PowerBid {
                core: 1,
                demand: 0.9,
                priority: 1.0,
                watts_per_freq: 10.0,
            },
        ];
        // 24 W: core 0 (bid 1.0) costs 24 to fully sprint → exactly fits.
        let a = allocate_power_bids(&b, Watts(24.0), 0.2, 1.0);
        assert_eq!(a.freqs[0].1, 1.0);
        assert_eq!(a.freqs[1].1, 0.2);
    }

    #[test]
    #[should_panic(expected = "invalid frequency range")]
    fn rejects_bad_range() {
        allocate_power_bids(&bids(1), Watts(1.0), 0.9, 0.5);
    }

    fn hbid(id: usize, request: f64, priority: f64) -> HeadroomBid {
        HeadroomBid {
            id,
            request: Watts(request),
            priority,
        }
    }

    #[test]
    fn headroom_greedy_grants_and_fractional_marginal() {
        let b = [
            hbid(0, 800.0, 1.0),
            hbid(1, 800.0, 2.0),
            hbid(2, 800.0, 0.5),
        ];
        let a = allocate_headroom(&b, Watts(1200.0));
        assert_eq!(a.grants[1], Watts(800.0), "highest value wins first");
        assert_eq!(a.grants[0], Watts(400.0), "marginal fractional grant");
        assert_eq!(a.grants[2], Watts::ZERO);
        assert_eq!(a.spent, Watts(1200.0));
        assert_eq!(a.granted, 2);
    }

    #[test]
    fn headroom_ties_break_by_id_and_budget_is_conserved() {
        let b: Vec<HeadroomBid> = (0..4).map(|i| hbid(i, 500.0, 1.0)).collect();
        for budget in [0.0, 250.0, 777.0, 2000.0, 1e6] {
            let a = allocate_headroom(&b, Watts(budget));
            let total: f64 = a.grants.iter().map(|g| g.0).sum();
            assert!(total <= budget + 1e-9, "budget {budget}: spent {total}");
            assert!((total - a.spent.0).abs() < 1e-9);
            // Lower ids fill first on equal value.
            for w in a.grants.windows(2) {
                assert!(w[0].0 >= w[1].0);
            }
        }
    }

    #[test]
    fn headroom_zero_requests_get_nothing() {
        let b = [hbid(0, 0.0, 5.0), hbid(1, 100.0, 1.0)];
        let a = allocate_headroom(&b, Watts(1000.0));
        assert_eq!(a.grants[0], Watts::ZERO);
        assert_eq!(a.grants[1], Watts(100.0));
        assert_eq!(a.granted, 1);
    }

    #[test]
    fn two_level_single_pdu_matches_flat_auction() {
        let b = [
            hbid(0, 800.0, 1.0),
            hbid(1, 800.0, 2.0),
            hbid(2, 800.0, 0.5),
        ];
        let flat = allocate_headroom(&b, Watts(1200.0));
        let two = allocate_headroom_two_level(&b, &[0, 0, 0], &[Watts(1e9)], Watts(1200.0));
        assert_eq!(flat.grants, two.grants);
        assert_eq!(flat.spent, two.spent);
    }

    #[test]
    fn two_level_respects_pdu_caps_and_feeder_budget() {
        // PDU 0 wants 1600 but its edge only carries 500; PDU 1 wants
        // 1000. Feeder has 1200: PDU 1 (higher mean priority) gets its
        // 1000, PDU 0 gets the remaining 200 despite wanting more.
        let b = [
            hbid(0, 800.0, 1.0),
            hbid(1, 800.0, 1.0),
            hbid(2, 1000.0, 2.0),
        ];
        let a = allocate_headroom_two_level(
            &b,
            &[0, 0, 1],
            &[Watts(500.0), Watts(2000.0)],
            Watts(1200.0),
        );
        assert_eq!(a.grants[2], Watts(1000.0));
        // PDU 0's 200 W goes to the lower id on the value tie.
        assert_eq!(a.grants[0], Watts(200.0));
        assert_eq!(a.grants[1], Watts::ZERO);
        let total: f64 = a.grants.iter().map(|g| g.0).sum();
        assert!(total <= 1200.0 + 1e-9);
    }

    #[test]
    fn workspace_reuse_is_deterministic() {
        // The same bid set cleared through a fresh workspace and through
        // one warmed on a differently-shaped round must produce
        // bit-identical grants — and both must match the Vec-returning
        // entry point.
        let b: Vec<HeadroomBid> = (0..9)
            .map(|i| hbid(i, 150.0 + 37.5 * (i as f64), 0.25 + 0.4 * (i % 4) as f64))
            .collect();
        let pdu_of = [0, 0, 0, 1, 1, 1, 2, 2, 2];
        let caps = [Watts(600.0), Watts(900.0), Watts(350.0)];
        let budget = Watts(1100.0);

        let mut warm = MarketWorkspace::new();
        // Warm-up on a different shape so every scratch Vec is dirty.
        let distractors: Vec<HeadroomBid> = (0..5).map(|i| hbid(i, 9999.0, 7.0)).collect();
        allocate_headroom_two_level_with(
            &mut warm,
            &distractors,
            &[0, 1, 1, 0, 1],
            &[Watts(1e6), Watts(1e6)],
            Watts(1e6),
        );

        let mut fresh = MarketWorkspace::new();
        let out_fresh = allocate_headroom_two_level_with(&mut fresh, &b, &pdu_of, &caps, budget);
        let out_warm = allocate_headroom_two_level_with(&mut warm, &b, &pdu_of, &caps, budget);
        let vec_api = allocate_headroom_two_level(&b, &pdu_of, &caps, budget);

        assert_eq!(out_fresh, out_warm);
        assert_eq!(fresh.grants(), warm.grants());
        assert_eq!(vec_api.grants.as_slice(), fresh.grants());
        assert_eq!(vec_api.spent.0.to_bits(), out_fresh.spent.0.to_bits());
        assert_eq!(vec_api.granted, out_fresh.granted);
        for (a, b) in vec_api.grants.iter().zip(fresh.grants()) {
            assert_eq!(a.0.to_bits(), b.0.to_bits());
        }
    }

    #[test]
    fn two_level_conservation_holds_per_pdu_and_overall() {
        // Randomized-ish sweep over budgets: per-PDU sums never exceed
        // the cap and the overall sum never exceeds the feeder budget.
        let b: Vec<HeadroomBid> = (0..6)
            .map(|i| hbid(i, 300.0 + 100.0 * (i as f64), 0.5 + 0.3 * (i % 3) as f64))
            .collect();
        let pdu_of = [0, 0, 1, 1, 2, 2];
        let caps = [Watts(700.0), Watts(400.0), Watts(5000.0)];
        for budget in [0.0, 300.0, 900.0, 1500.0, 1e5] {
            let a = allocate_headroom_two_level(&b, &pdu_of, &caps, Watts(budget));
            let total: f64 = a.grants.iter().map(|g| g.0).sum();
            assert!(total <= budget + 1e-9);
            for (p, cap) in caps.iter().enumerate() {
                let pdu_sum: f64 = a
                    .grants
                    .iter()
                    .zip(&pdu_of)
                    .filter(|(_, &q)| q == p)
                    .map(|(g, _)| g.0)
                    .sum();
                assert!(pdu_sum <= cap.0 + 1e-9, "PDU {p} over cap: {pdu_sum}");
            }
        }
    }
}
