//! Power bidding (§IV-C): when the energy storage is running out,
//! `P_cb` becomes the power target for *all* workloads and "different
//! workloads can bid for power as in [2]".
//!
//! This module implements that allocation primitive: each core submits a
//! bid (demand × priority); the budget is spent greedily down the bid
//! ranking using the linear per-core power model, with the marginal core
//! receiving the fractional frequency that exhausts the budget. It is
//! the model-based, single-owner analogue of the baselines' cooperative
//! threshold — used by the supervisor's conservation modes and available
//! to downstream users as a standalone API.

use powersim::units::Watts;

/// One core's bid for power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBid {
    /// Caller-chosen core identifier (returned in the allocation).
    pub core: usize,
    /// Demand signal in `[0, 1]` — typically measured utilization.
    pub demand: f64,
    /// Workload-class priority multiplier (e.g. interactive > batch).
    pub priority: f64,
    /// Watts per unit normalized frequency for this core (model `k`).
    pub watts_per_freq: f64,
}

impl PowerBid {
    /// The bid value the auction ranks by.
    pub fn value(&self) -> f64 {
        self.demand.max(0.0) * self.priority.max(0.0)
    }
}

/// Result of one auction round.
#[derive(Debug, Clone)]
pub struct BidAllocation {
    /// `(core, frequency)` pairs in the input order.
    pub freqs: Vec<(usize, f64)>,
    /// Power the model predicts this allocation draws above the floor.
    pub spent: Watts,
    /// Cores granted more than the floor frequency.
    pub granted: usize,
}

/// Allocate `budget` watts of *dynamic* power (above the all-cores-at-
/// `f_floor` baseline) across the bidders.
///
/// Cores are ranked by bid value (ties broken by core id for
/// determinism); each winner is raised from `f_floor` toward `f_peak`,
/// costing `watts_per_freq × Δf`, until the budget runs out; the
/// marginal core gets the exact fractional frequency that spends the
/// remainder.
pub fn allocate_power_bids(
    bids: &[PowerBid],
    budget: Watts,
    f_floor: f64,
    f_peak: f64,
) -> BidAllocation {
    assert!(
        (0.0..=1.0).contains(&f_floor) && f_floor <= f_peak && f_peak <= 1.0,
        "invalid frequency range"
    );
    assert!(
        bids.iter().all(|b| b.watts_per_freq > 0.0),
        "power slopes must be positive"
    );
    let mut order: Vec<usize> = (0..bids.len()).collect();
    order.sort_by(|&a, &b| {
        bids[b]
            .value()
            .total_cmp(&bids[a].value())
            .then(bids[a].core.cmp(&bids[b].core))
    });
    let mut freqs: Vec<(usize, f64)> = bids.iter().map(|b| (b.core, f_floor)).collect();
    let mut remaining = budget.0.max(0.0);
    let mut granted = 0;
    for &i in &order {
        if remaining <= 0.0 {
            break;
        }
        let full_cost = bids[i].watts_per_freq * (f_peak - f_floor);
        if full_cost <= remaining {
            freqs[i].1 = f_peak;
            remaining -= full_cost;
            if f_peak > f_floor {
                granted += 1;
            }
        } else {
            let df = remaining / bids[i].watts_per_freq;
            freqs[i].1 = (f_floor + df).min(f_peak);
            remaining = 0.0;
            if df > 0.0 {
                granted += 1;
            }
            break;
        }
    }
    BidAllocation {
        spent: Watts(budget.0.max(0.0) - remaining),
        freqs,
        granted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bids(n: usize) -> Vec<PowerBid> {
        (0..n)
            .map(|i| PowerBid {
                core: i,
                demand: 0.5 + 0.05 * (i as f64),
                priority: 1.0,
                watts_per_freq: 15.0,
            })
            .collect()
    }

    #[test]
    fn zero_budget_leaves_everyone_at_floor() {
        let a = allocate_power_bids(&bids(4), Watts(0.0), 0.2, 1.0);
        assert!(a.freqs.iter().all(|&(_, f)| f == 0.2));
        assert_eq!(a.granted, 0);
        assert_eq!(a.spent, Watts(0.0));
    }

    #[test]
    fn ample_budget_grants_everyone_peak() {
        let a = allocate_power_bids(&bids(4), Watts(1e6), 0.2, 1.0);
        assert!(a.freqs.iter().all(|&(_, f)| f == 1.0));
        assert_eq!(a.granted, 4);
        // Spent exactly 4 × 15 × 0.8.
        assert!((a.spent.0 - 48.0).abs() < 1e-9);
    }

    #[test]
    fn highest_bids_win_first() {
        // Budget covers one full grant plus half of another.
        let a = allocate_power_bids(&bids(4), Watts(18.0), 0.2, 1.0);
        // Core 3 has the biggest demand → full peak.
        assert_eq!(a.freqs[3], (3, 1.0));
        // Core 2 gets the fractional remainder: 18 − 12 = 6 W → Δf 0.4.
        assert!((a.freqs[2].1 - 0.6).abs() < 1e-9);
        assert_eq!(a.freqs[1].1, 0.2);
        assert_eq!(a.freqs[0].1, 0.2);
        assert_eq!(a.granted, 2);
        assert!((a.spent.0 - 18.0).abs() < 1e-9);
    }

    #[test]
    fn priority_multiplier_overrides_demand() {
        let mut b = bids(2);
        b[0].demand = 0.4;
        b[0].priority = 3.0; // interactive-style boost: bid 1.2
        b[1].demand = 0.9;
        b[1].priority = 1.0; // bid 0.9
        let a = allocate_power_bids(&b, Watts(12.0), 0.2, 1.0);
        assert_eq!(a.freqs[0].1, 1.0, "prioritized core wins");
        assert_eq!(a.freqs[1].1, 0.2);
    }

    #[test]
    fn ties_break_deterministically_by_core_id() {
        let b: Vec<PowerBid> = (0..3)
            .map(|i| PowerBid {
                core: i,
                demand: 0.5,
                priority: 1.0,
                watts_per_freq: 15.0,
            })
            .collect();
        let a = allocate_power_bids(&b, Watts(12.0), 0.2, 1.0);
        assert_eq!(a.freqs[0].1, 1.0);
        assert_eq!(a.freqs[1].1, 0.2);
    }

    #[test]
    fn budget_is_never_exceeded() {
        for budget in [0.0, 5.0, 17.3, 36.0, 100.0] {
            let a = allocate_power_bids(&bids(5), Watts(budget), 0.2, 1.0);
            let cost: f64 = a.freqs.iter().map(|&(_, f)| 15.0 * (f - 0.2)).sum();
            assert!(cost <= budget + 1e-9, "budget {budget}: cost {cost}");
            assert!((cost - a.spent.0).abs() < 1e-9);
        }
    }

    #[test]
    fn heterogeneous_slopes_charge_correctly() {
        let b = vec![
            PowerBid {
                core: 0,
                demand: 1.0,
                priority: 1.0,
                watts_per_freq: 30.0,
            },
            PowerBid {
                core: 1,
                demand: 0.9,
                priority: 1.0,
                watts_per_freq: 10.0,
            },
        ];
        // 24 W: core 0 (bid 1.0) costs 24 to fully sprint → exactly fits.
        let a = allocate_power_bids(&b, Watts(24.0), 0.2, 1.0);
        assert_eq!(a.freqs[0].1, 1.0);
        assert_eq!(a.freqs[1].1, 0.2);
    }

    #[test]
    #[should_panic(expected = "invalid frequency range")]
    fn rejects_bad_range() {
        allocate_power_bids(&bids(1), Watts(1.0), 0.9, 0.5);
    }
}
