//! # sprintcon — controllable and efficient computational sprinting
//!
//! A from-scratch implementation of **SprintCon** (Zheng et al.,
//! IPDPS 2019): a control system that lets a rack of data-center servers
//! sprint — draw more power than its circuit breaker's rated capacity —
//! for long durations, safely and efficiently, by coordinating three
//! pieces (Fig. 4 of the paper):
//!
//! * the **power load allocator** ([`allocator`]) splits the load between
//!   the breaker (periodic overload schedule → `P_cb`) and the UPS, and
//!   budgets the batch workloads (`P_batch`) from deadline pressure and
//!   interactive headroom utilization;
//! * the **server power controller** ([`server_controller`]) is an MPC
//!   over per-core DVFS that tracks `P_batch` using the indirect feedback
//!   `p_fb = p_total − p_inter` (Eq. (6));
//! * the **UPS power controller** ([`ups_controller`]) sets the
//!   duty-cycled discharge so the breaker carries exactly `P_cb`.
//!
//! The [`supervisor::SprintCon`] object ties them together and implements
//! the §IV-C escalation ladder (breaker near trip → stop overloading;
//! storage near empty → throttle everything into `P_cb`; both → end the
//! sprint).
//!
//! ## Quick start
//!
//! ```
//! use sprintcon::{ActiveGrid, SprintCon, SprintConConfig, SprintConInputs};
//! use powersim::units::{Seconds, Utilization, Watts};
//! use workloads::{BatchJob, ProgressModel};
//!
//! let cfg = SprintConConfig::paper_default();
//! let mut ctl = SprintCon::new(cfg);
//! let n = ctl.server_controller().num_channels();
//! let jobs: Vec<BatchJob> = (0..n)
//!     .map(|i| BatchJob::new(format!("job{i}"), ProgressModel::new(0.2), 300.0, Seconds(900.0)))
//!     .collect();
//! let utils = vec![Utilization(0.6); ctl.cfg.num_servers];
//! let freqs = vec![1.0; n];
//! let out = ctl.step(Seconds(1.0), SprintConInputs {
//!     p_total: Watts(4100.0),
//!     interactive_util: &utils,
//!     batch_freqs: &freqs,
//!     jobs: &jobs,
//!     breaker_margin: 0.0,
//!     breaker_closed: true,
//!     ups_soc: 1.0,
//!     queue: None,
//!     grid: ActiveGrid::default(),
//! });
//! assert_eq!(out.batch_freqs.len(), n);
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod allocator;
pub mod bidding;
pub mod chip_quota;
pub mod config;
pub mod server_controller;
pub mod supervisor;
pub mod ups_controller;

pub use allocator::{AllocatorTargets, CbScheduler, PowerLoadAllocator, ScheduleKind};
pub use bidding::{
    allocate_headroom, allocate_headroom_two_level, allocate_headroom_two_level_with,
    allocate_power_bids, BidAllocation, HeadroomAllocation, HeadroomBid, MarketOutcome,
    MarketWorkspace, PowerBid,
};
pub use chip_quota::{divide_quota, QuotaPolicy};
pub use config::{ConfigError, SprintConConfig};
pub use powersim::grid::ActiveGrid;
pub use server_controller::ServerPowerController;
pub use sprint_control::mpc::MpcBackend;
pub use supervisor::{QueueMeasurement, SprintCon, SprintConInputs, SprintConOutputs, SprintMode};
pub use ups_controller::UpsPowerController;
