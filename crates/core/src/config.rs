//! SprintCon configuration: every knob of §IV–§VI in one place.

use powersim::breaker::BreakerSpec;
use powersim::server::ServerSpec;
use powersim::units::{Seconds, Watts};
use powersim::ups::UpsSpec;
use sprint_control::mpc::MpcConfig;

/// Full system configuration.
#[derive(Debug, Clone)]
pub struct SprintConConfig {
    /// Servers behind the breaker (§VI-A: 16).
    pub num_servers: usize,
    /// Interactive cores per server (§VI-A mixed placement: 4 of 8).
    pub interactive_cores_per_server: usize,
    /// Server hardware description.
    pub server: ServerSpec,
    /// Circuit breaker protecting the rack.
    pub breaker: BreakerSpec,
    /// UPS energy storage.
    pub ups: UpsSpec,

    // --- CB overload schedule (§IV-A) ---
    /// Overload degree during the overload state (1.25).
    pub overload_degree: f64,
    /// Planned overload-state duration (150 s).
    pub overload_duration: Seconds,
    /// Planned recovery-state duration (≤ 300 s).
    pub recovery_duration: Seconds,
    /// Fraction of the breaker's trip budget the schedule may consume
    /// before the supervisor forces recovery (safety margin under the
    /// curve of Fig. 2).
    pub trip_margin_stop: f64,
    /// Expected workload-burst duration `T_burst`; picks the schedule
    /// shape (§IV-A: <1 min → unconstrained, 5–10 min → constant
    /// overload, longer → periodic).
    pub t_burst: Seconds,

    // --- control timing (§IV-B, §V-C) ---
    /// Server & UPS power-controller period (1 s).
    pub control_period: Seconds,
    /// Power-load-allocator period (30 s ≫ controller settling time).
    pub allocator_period: Seconds,

    // --- server power controller (§V-B) ---
    pub mpc: MpcConfig,
    /// Assumed batch-core utilization when fitting the linear model.
    pub assumed_batch_util: f64,

    // --- power load allocator (§IV-B) ---
    /// Factor-2 upper threshold: if interactive power exceeds
    /// `P_cb − P_batch` more than this fraction of the time, shrink
    /// `P_batch` ("more than 90% of the time").
    pub inter_pressure_high: f64,
    /// Factor-2 lower threshold: below it, grow `P_batch`.
    pub inter_pressure_low: f64,
    /// Multiplicative trim step applied by factor 2.
    pub p_batch_trim_step: f64,
    /// Safety multiplier on the deadline power floor.
    pub deadline_margin: f64,

    // --- UPS power controller (§IV-C) ---
    /// The UPS controller holds the breaker at `P_cb × this factor`
    /// during *overload* windows: slightly below the target, so
    /// measurement noise and the one-period actuation delay cannot push
    /// the thermal accumulator past the planned trip budget.
    pub cb_target_margin: f64,
    /// Margin during *recovery* windows. Deeper than the overload margin:
    /// every second the noisy breaker spends above rated is a second of
    /// heating instead of cooling, and a slow recovery delays the next
    /// overload window past what the allocator's deadline-banking plan
    /// assumed (§V-C timing contract).
    pub cb_recovery_margin: f64,

    // --- supervisor (§IV-C) ---
    /// UPS state-of-charge fraction below which the supervisor enters
    /// energy-conservation mode.
    pub soc_reserve: f64,
}

impl SprintConConfig {
    /// The paper's evaluation setup (§VI-A), end to end.
    pub fn paper_default() -> Self {
        SprintConConfig {
            num_servers: 16,
            interactive_cores_per_server: 4,
            server: ServerSpec::paper_default(),
            breaker: BreakerSpec::paper_default(),
            ups: UpsSpec::paper_default(),
            overload_degree: 1.25,
            overload_duration: Seconds(150.0),
            recovery_duration: Seconds(300.0),
            trip_margin_stop: 0.95,
            t_burst: Seconds::minutes(15.0),
            control_period: Seconds(1.0),
            allocator_period: Seconds(30.0),
            mpc: MpcConfig::paper_default(),
            assumed_batch_util: 0.95,
            inter_pressure_high: 0.9,
            inter_pressure_low: 0.4,
            p_batch_trim_step: 0.1,
            deadline_margin: 1.12,
            cb_target_margin: 0.99,
            cb_recovery_margin: 0.98,
            soc_reserve: 0.03,
        }
    }

    /// Batch cores per server.
    pub fn batch_cores_per_server(&self) -> usize {
        self.server.num_cores - self.interactive_cores_per_server
    }

    /// Total batch cores on the rack.
    pub fn total_batch_cores(&self) -> usize {
        self.num_servers * self.batch_cores_per_server()
    }

    /// Total interactive cores on the rack.
    pub fn total_interactive_cores(&self) -> usize {
        self.num_servers * self.interactive_cores_per_server
    }

    /// Rated breaker power.
    pub fn rated(&self) -> Watts {
        self.breaker.rated
    }

    /// Breaker power during the overload state.
    pub fn overloaded(&self) -> Watts {
        Watts(self.breaker.rated.0 * self.overload_degree)
    }

    /// Panics on inconsistent settings; call once at construction.
    pub fn validate(&self) {
        assert!(self.num_servers > 0);
        assert!(self.interactive_cores_per_server <= self.server.num_cores);
        assert!(self.overload_degree > 1.0, "overload degree must exceed 1");
        assert!(self.overload_duration.0 > 0.0 && self.recovery_duration.0 > 0.0);
        assert!((0.0..=1.0).contains(&self.trip_margin_stop));
        assert!(self.control_period.0 > 0.0);
        assert!(
            self.allocator_period.0 >= 10.0 * self.control_period.0,
            "allocator must run much slower than the controller (§V-C)"
        );
        assert!((0.0..1.0).contains(&self.inter_pressure_low));
        assert!(
            self.inter_pressure_low < self.inter_pressure_high && self.inter_pressure_high <= 1.0
        );
        assert!(self.p_batch_trim_step > 0.0 && self.p_batch_trim_step < 1.0);
        assert!(self.deadline_margin >= 1.0);
        assert!(
            (0.9..=1.0).contains(&self.cb_target_margin),
            "cb target margin must be a small undershoot"
        );
        assert!(
            (0.9..=1.0).contains(&self.cb_recovery_margin)
                && self.cb_recovery_margin <= self.cb_target_margin,
            "recovery margin must undershoot at least as deeply"
        );
        assert!((0.0..0.5).contains(&self.soc_reserve));
        // The planned overload must stay under the trip curve with margin.
        let trip = self.breaker.trip_time(self.overload_degree);
        assert!(
            self.overload_duration.0 <= trip.0,
            "planned overload duration exceeds the trip curve"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_consistent() {
        let c = SprintConConfig::paper_default();
        c.validate();
        assert_eq!(c.total_batch_cores(), 64);
        assert_eq!(c.total_interactive_cores(), 64);
        assert_eq!(c.rated(), Watts(3200.0));
        assert_eq!(c.overloaded(), Watts(4000.0));
    }

    #[test]
    #[should_panic(expected = "allocator must run much slower")]
    fn rejects_fast_allocator() {
        let mut c = SprintConConfig::paper_default();
        c.allocator_period = Seconds(2.0);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "exceeds the trip curve")]
    fn rejects_overload_beyond_trip_curve() {
        let mut c = SprintConConfig::paper_default();
        c.overload_duration = Seconds(151.0);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "overload degree")]
    fn rejects_non_overload() {
        let mut c = SprintConConfig::paper_default();
        c.overload_degree = 1.0;
        c.validate();
    }
}
