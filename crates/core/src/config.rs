//! SprintCon configuration: every knob of §IV–§VI in one place.

use powersim::breaker::BreakerSpec;
use powersim::server::ServerSpec;
use powersim::units::{Seconds, Watts};
use powersim::ups::UpsSpec;
use sprint_control::mpc::{MpcBackend, MpcConfig};

/// Full system configuration.
#[derive(Debug, Clone)]
pub struct SprintConConfig {
    /// Servers behind the breaker (§VI-A: 16).
    pub num_servers: usize,
    /// Interactive cores per server (§VI-A mixed placement: 4 of 8).
    pub interactive_cores_per_server: usize,
    /// Server hardware description.
    pub server: ServerSpec,
    /// Circuit breaker protecting the rack.
    pub breaker: BreakerSpec,
    /// UPS energy storage.
    pub ups: UpsSpec,

    // --- CB overload schedule (§IV-A) ---
    /// Overload degree during the overload state (1.25).
    pub overload_degree: f64,
    /// Planned overload-state duration (150 s).
    pub overload_duration: Seconds,
    /// Planned recovery-state duration (≤ 300 s).
    pub recovery_duration: Seconds,
    /// Fraction of the breaker's trip budget the schedule may consume
    /// before the supervisor forces recovery (safety margin under the
    /// curve of Fig. 2).
    pub trip_margin_stop: f64,
    /// Expected workload-burst duration `T_burst`; picks the schedule
    /// shape (§IV-A: <1 min → unconstrained, 5–10 min → constant
    /// overload, longer → periodic).
    pub t_burst: Seconds,

    // --- control timing (§IV-B, §V-C) ---
    /// Server & UPS power-controller period (1 s).
    pub control_period: Seconds,
    /// Power-load-allocator period (30 s ≫ controller settling time).
    pub allocator_period: Seconds,

    // --- server power controller (§V-B) ---
    pub mpc: MpcConfig,
    /// Which QP backend the MPC runs each period. The structured default
    /// exploits the Eq. (8) block-separable diagonal-plus-rank-one
    /// Hessian (O(n) per period); the dense FISTA path is the
    /// cross-validation reference.
    pub mpc_backend: MpcBackend,
    /// Assumed batch-core utilization when fitting the linear model.
    pub assumed_batch_util: f64,

    // --- power load allocator (§IV-B) ---
    /// Factor-2 upper threshold: if interactive power exceeds
    /// `P_cb − P_batch` more than this fraction of the time, shrink
    /// `P_batch` ("more than 90% of the time").
    pub inter_pressure_high: f64,
    /// Factor-2 lower threshold: below it, grow `P_batch`.
    pub inter_pressure_low: f64,
    /// Multiplicative trim step applied by factor 2.
    pub p_batch_trim_step: f64,
    /// Safety multiplier on the deadline power floor.
    pub deadline_margin: f64,

    // --- UPS power controller (§IV-C) ---
    /// The UPS controller holds the breaker at `P_cb × this factor`
    /// during *overload* windows: slightly below the target, so
    /// measurement noise and the one-period actuation delay cannot push
    /// the thermal accumulator past the planned trip budget.
    pub cb_target_margin: f64,
    /// Margin during *recovery* windows. Deeper than the overload margin:
    /// every second the noisy breaker spends above rated is a second of
    /// heating instead of cooling, and a slow recovery delays the next
    /// overload window past what the allocator's deadline-banking plan
    /// assumed (§V-C timing contract).
    pub cb_recovery_margin: f64,

    // --- supervisor (§IV-C) ---
    /// UPS state-of-charge fraction below which the supervisor enters
    /// energy-conservation mode.
    pub soc_reserve: f64,

    // --- degraded-mode operation (sensor-fault tolerance) ---
    /// How long the supervisor may hold the last good power reading when
    /// the monitor misbehaves before switching to a model-based estimate.
    pub measurement_hold_max: Seconds,
    /// Subtracted from `trip_margin_stop` while the power sensor is
    /// faulty: with degraded feedback the supervisor stops overloading
    /// the breaker earlier.
    pub guard_band_widen: f64,
    /// Consecutive bit-identical readings (beyond the first) after which
    /// the sensor is declared stuck. Gaussian monitor noise makes exact
    /// repeats vanishingly rare on a healthy sensor.
    pub stuck_sensor_periods: u32,
    /// Readings above this are physically implausible for the plant and
    /// rejected as sensor spikes.
    pub spike_reject_above: Watts,
    /// Sustained blind operation bound: if no trustworthy reading has
    /// arrived for this long, the sprint is ended outright.
    pub blind_sprint_end: Seconds,
}

/// Why a [`SprintConConfig`] failed validation.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    NoServers,
    TooManyInteractiveCores {
        interactive: usize,
        cores: usize,
    },
    /// "overload degree must exceed 1".
    NonOverloadDegree(f64),
    NonPositiveScheduleDurations,
    InvalidTripMarginStop(f64),
    NonPositiveControlPeriod(f64),
    /// "allocator must run much slower than the controller (§V-C)".
    AllocatorTooFast {
        allocator_period: Seconds,
        control_period: Seconds,
    },
    InvalidPressureBand {
        low: f64,
        high: f64,
    },
    InvalidTrimStep(f64),
    InvalidDeadlineMargin(f64),
    InvalidCbTargetMargin(f64),
    InvalidCbRecoveryMargin {
        recovery: f64,
        target: f64,
    },
    InvalidSocReserve(f64),
    /// "planned overload duration exceeds the trip curve".
    OverloadBeyondTripCurve {
        planned: Seconds,
        trip: Seconds,
    },
    InvalidDegradedMode(&'static str),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoServers => write!(f, "at least one server is required"),
            ConfigError::TooManyInteractiveCores { interactive, cores } => write!(
                f,
                "{interactive} interactive cores do not fit a {cores}-core server"
            ),
            ConfigError::NonOverloadDegree(d) => {
                write!(f, "overload degree must exceed 1, got {d}")
            }
            ConfigError::NonPositiveScheduleDurations => {
                write!(f, "overload/recovery durations must be positive")
            }
            ConfigError::InvalidTripMarginStop(m) => {
                write!(f, "trip_margin_stop must be in [0, 1], got {m}")
            }
            ConfigError::NonPositiveControlPeriod(p) => {
                write!(f, "control period must be positive, got {p}")
            }
            ConfigError::AllocatorTooFast {
                allocator_period,
                control_period,
            } => write!(
                f,
                "allocator must run much slower than the controller (§V-C): \
                 allocator period {allocator_period} vs control period {control_period}"
            ),
            ConfigError::InvalidPressureBand { low, high } => {
                write!(
                    f,
                    "pressure thresholds must satisfy 0 ≤ low < high ≤ 1, got {low}/{high}"
                )
            }
            ConfigError::InvalidTrimStep(s) => {
                write!(f, "p_batch trim step must be in (0, 1), got {s}")
            }
            ConfigError::InvalidDeadlineMargin(m) => {
                write!(f, "deadline margin must be ≥ 1, got {m}")
            }
            ConfigError::InvalidCbTargetMargin(m) => {
                write!(
                    f,
                    "cb target margin must be a small undershoot in [0.9, 1], got {m}"
                )
            }
            ConfigError::InvalidCbRecoveryMargin { recovery, target } => write!(
                f,
                "recovery margin must undershoot at least as deeply: {recovery} vs {target}"
            ),
            ConfigError::InvalidSocReserve(r) => {
                write!(f, "soc reserve must be in [0, 0.5), got {r}")
            }
            ConfigError::OverloadBeyondTripCurve { planned, trip } => write!(
                f,
                "planned overload duration exceeds the trip curve: {planned} > {trip}"
            ),
            ConfigError::InvalidDegradedMode(what) => {
                write!(f, "degraded-mode config invalid: {what}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl SprintConConfig {
    /// The paper's evaluation setup (§VI-A), end to end.
    pub fn paper_default() -> Self {
        SprintConConfig {
            num_servers: 16,
            interactive_cores_per_server: 4,
            server: ServerSpec::paper_default(),
            breaker: BreakerSpec::paper_default(),
            ups: UpsSpec::paper_default(),
            overload_degree: 1.25,
            overload_duration: Seconds(150.0),
            recovery_duration: Seconds(300.0),
            trip_margin_stop: 0.95,
            t_burst: Seconds::minutes(15.0),
            control_period: Seconds(1.0),
            allocator_period: Seconds(30.0),
            mpc: MpcConfig::paper_default(),
            mpc_backend: MpcBackend::default(),
            assumed_batch_util: 0.95,
            inter_pressure_high: 0.9,
            inter_pressure_low: 0.4,
            p_batch_trim_step: 0.1,
            deadline_margin: 1.12,
            cb_target_margin: 0.99,
            cb_recovery_margin: 0.98,
            soc_reserve: 0.03,
            measurement_hold_max: Seconds(5.0),
            guard_band_widen: 0.15,
            stuck_sensor_periods: 5,
            // Twice the overloaded rack power: no legitimate reading of
            // the §VI-A plant (≲ 5 kW) ever comes close.
            spike_reject_above: Watts(8000.0),
            blind_sprint_end: Seconds(30.0),
        }
    }

    /// Batch cores per server.
    pub fn batch_cores_per_server(&self) -> usize {
        self.server.num_cores - self.interactive_cores_per_server
    }

    /// Total batch cores on the rack.
    pub fn total_batch_cores(&self) -> usize {
        self.num_servers * self.batch_cores_per_server()
    }

    /// Total interactive cores on the rack.
    pub fn total_interactive_cores(&self) -> usize {
        self.num_servers * self.interactive_cores_per_server
    }

    /// Rated breaker power.
    pub fn rated(&self) -> Watts {
        self.breaker.rated
    }

    /// Breaker power during the overload state.
    pub fn overloaded(&self) -> Watts {
        Watts(self.breaker.rated.0 * self.overload_degree)
    }

    /// Check every structural constraint; [`crate::SprintCon::try_new`]
    /// calls this once at construction.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_servers == 0 {
            return Err(ConfigError::NoServers);
        }
        if self.interactive_cores_per_server > self.server.num_cores {
            return Err(ConfigError::TooManyInteractiveCores {
                interactive: self.interactive_cores_per_server,
                cores: self.server.num_cores,
            });
        }
        if self.overload_degree <= 1.0 {
            return Err(ConfigError::NonOverloadDegree(self.overload_degree));
        }
        if !(self.overload_duration.0 > 0.0 && self.recovery_duration.0 > 0.0) {
            return Err(ConfigError::NonPositiveScheduleDurations);
        }
        if !(0.0..=1.0).contains(&self.trip_margin_stop) {
            return Err(ConfigError::InvalidTripMarginStop(self.trip_margin_stop));
        }
        if self.control_period.0 <= 0.0 {
            return Err(ConfigError::NonPositiveControlPeriod(self.control_period.0));
        }
        if self.allocator_period.0 < 10.0 * self.control_period.0 {
            return Err(ConfigError::AllocatorTooFast {
                allocator_period: self.allocator_period,
                control_period: self.control_period,
            });
        }
        if !(0.0..1.0).contains(&self.inter_pressure_low)
            || self.inter_pressure_low >= self.inter_pressure_high
            || self.inter_pressure_high > 1.0
        {
            return Err(ConfigError::InvalidPressureBand {
                low: self.inter_pressure_low,
                high: self.inter_pressure_high,
            });
        }
        if !(self.p_batch_trim_step > 0.0 && self.p_batch_trim_step < 1.0) {
            return Err(ConfigError::InvalidTrimStep(self.p_batch_trim_step));
        }
        if self.deadline_margin < 1.0 {
            return Err(ConfigError::InvalidDeadlineMargin(self.deadline_margin));
        }
        if !(0.9..=1.0).contains(&self.cb_target_margin) {
            return Err(ConfigError::InvalidCbTargetMargin(self.cb_target_margin));
        }
        if !(0.9..=1.0).contains(&self.cb_recovery_margin)
            || self.cb_recovery_margin > self.cb_target_margin
        {
            return Err(ConfigError::InvalidCbRecoveryMargin {
                recovery: self.cb_recovery_margin,
                target: self.cb_target_margin,
            });
        }
        if !(0.0..0.5).contains(&self.soc_reserve) {
            return Err(ConfigError::InvalidSocReserve(self.soc_reserve));
        }
        // The planned overload must stay under the trip curve with margin.
        let trip = self.breaker.trip_time(self.overload_degree);
        if self.overload_duration.0 > trip.0 {
            return Err(ConfigError::OverloadBeyondTripCurve {
                planned: self.overload_duration,
                trip,
            });
        }
        // Degraded-mode ladder: each rung must engage after the previous.
        if !(self.measurement_hold_max.0 >= 0.0 && self.measurement_hold_max.0.is_finite()) {
            return Err(ConfigError::InvalidDegradedMode(
                "measurement_hold_max must be finite and non-negative",
            ));
        }
        if self.blind_sprint_end.0 < self.measurement_hold_max.0 {
            return Err(ConfigError::InvalidDegradedMode(
                "blind_sprint_end must not precede measurement_hold_max",
            ));
        }
        if !(0.0..=self.trip_margin_stop).contains(&self.guard_band_widen) {
            return Err(ConfigError::InvalidDegradedMode(
                "guard_band_widen must be in [0, trip_margin_stop]",
            ));
        }
        if self.stuck_sensor_periods < 2 {
            return Err(ConfigError::InvalidDegradedMode(
                "stuck_sensor_periods must be at least 2",
            ));
        }
        if self.spike_reject_above.0 <= self.overloaded().0 {
            return Err(ConfigError::InvalidDegradedMode(
                "spike_reject_above must exceed the planned overloaded power",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_consistent() {
        let c = SprintConConfig::paper_default();
        c.validate().expect("paper default must validate");
        assert_eq!(c.total_batch_cores(), 64);
        assert_eq!(c.total_interactive_cores(), 64);
        assert_eq!(c.rated(), Watts(3200.0));
        assert_eq!(c.overloaded(), Watts(4000.0));
    }

    #[test]
    fn rejects_fast_allocator() {
        let mut c = SprintConConfig::paper_default();
        c.allocator_period = Seconds(2.0);
        let err = c.validate().unwrap_err();
        assert!(matches!(err, ConfigError::AllocatorTooFast { .. }));
        assert!(err.to_string().contains("allocator must run much slower"));
    }

    #[test]
    fn rejects_overload_beyond_trip_curve() {
        let mut c = SprintConConfig::paper_default();
        c.overload_duration = Seconds(151.0);
        let err = c.validate().unwrap_err();
        assert!(matches!(err, ConfigError::OverloadBeyondTripCurve { .. }));
        assert!(err.to_string().contains("exceeds the trip curve"));
    }

    #[test]
    fn rejects_non_overload() {
        let mut c = SprintConConfig::paper_default();
        c.overload_degree = 1.0;
        let err = c.validate().unwrap_err();
        assert!(matches!(err, ConfigError::NonOverloadDegree(_)));
        assert!(err.to_string().contains("overload degree"));
    }

    #[test]
    fn rejects_inverted_degradation_ladder() {
        let mut c = SprintConConfig::paper_default();
        c.blind_sprint_end = Seconds(1.0); // < measurement_hold_max
        assert!(matches!(
            c.validate().unwrap_err(),
            ConfigError::InvalidDegradedMode(_)
        ));
        let mut c = SprintConConfig::paper_default();
        c.spike_reject_above = Watts(3000.0); // below overloaded power
        assert!(matches!(
            c.validate().unwrap_err(),
            ConfigError::InvalidDegradedMode(_)
        ));
    }
}
