//! Chip-level frequency-quota division (§IV-D).
//!
//! The paper assumes each core's workload is independent, but notes that
//! for multi-threaded applications SprintCon can "determine the total
//! frequency quota of a group of cores running the same application, and
//! then divide the frequency quota to the cores in the group" using
//! chip-level allocation strategies \[25\]–\[28\]. This module is that
//! division step: given a group quota (the sum of normalized frequencies
//! the MPC granted the group) and per-core weights, produce per-core
//! frequencies inside the DVFS box.

/// How the quota is split inside a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuotaPolicy {
    /// Every core gets the same frequency.
    Uniform,
    /// Bounded water-filling proportional to the weights (e.g. per-thread
    /// criticality from \[26\]): heavier cores get more, clamped into the
    /// DVFS box, residual redistributed until exhausted.
    ByWeight,
    /// The single most critical core is raised to the box maximum first
    /// (bottleneck-first, the \[6\]/PowerChief intuition), the rest split
    /// the remainder by weight.
    CriticalFirst,
}

/// Divide `quota` (sum of normalized frequencies) among `weights.len()`
/// cores, each clamped into `[fmin, fmax]`.
///
/// The returned sum equals `quota` clamped into the feasible range
/// `[n·fmin, n·fmax]`.
pub fn divide_quota(
    quota: f64,
    weights: &[f64],
    fmin: f64,
    fmax: f64,
    policy: QuotaPolicy,
) -> Vec<f64> {
    let n = weights.len();
    assert!(n > 0, "group must contain cores");
    assert!(0.0 <= fmin && fmin <= fmax, "invalid DVFS box");
    assert!(
        weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "weights must be non-negative"
    );
    let feasible = quota.clamp(n as f64 * fmin, n as f64 * fmax);
    match policy {
        QuotaPolicy::Uniform => vec![feasible / n as f64; n],
        QuotaPolicy::ByWeight => water_fill(feasible, weights, fmin, fmax),
        QuotaPolicy::CriticalFirst => {
            let crit = weights
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))
                .map(|(i, _)| i)
                // `weights` is non-empty: `n >= 1` is asserted at entry.
                .expect("non-empty weights");
            if n == 1 {
                return vec![feasible];
            }
            let crit_f = fmax.min(feasible - (n - 1) as f64 * fmin);
            let rest_quota = feasible - crit_f;
            let rest_weights: Vec<f64> = weights
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != crit)
                .map(|(_, w)| *w)
                .collect();
            let rest = water_fill(rest_quota, &rest_weights, fmin, fmax);
            let mut out = Vec::with_capacity(n);
            let mut it = rest.into_iter();
            for i in 0..n {
                if i == crit {
                    out.push(crit_f);
                } else {
                    // `rest` has exactly `n − 1` entries, one per
                    // non-critical core.
                    out.push(it.next().expect("one fill level per core"));
                }
            }
            out
        }
    }
}

/// Bounded proportional water-filling: start everyone at `fmin`, then
/// repeatedly share the remaining quota proportionally to weights among
/// the cores that have not hit `fmax`.
fn water_fill(quota: f64, weights: &[f64], fmin: f64, fmax: f64) -> Vec<f64> {
    let n = weights.len();
    let mut f = vec![fmin; n];
    let mut remaining = quota - n as f64 * fmin;
    let mut open: Vec<usize> = (0..n).collect();
    // Degenerate weights: treat all-zero as uniform.
    let uniform_fallback = weights.iter().all(|&w| w == 0.0);
    for _ in 0..n + 1 {
        if remaining <= 1e-15 || open.is_empty() {
            break;
        }
        let wsum: f64 = if uniform_fallback {
            open.len() as f64
        } else {
            open.iter().map(|&i| weights[i]).sum()
        };
        if wsum <= 0.0 {
            // Only zero-weight cores remain: split evenly.
            let share = remaining / open.len() as f64;
            for &i in &open {
                f[i] = (f[i] + share).min(fmax);
            }
            break;
        }
        let mut next_open = Vec::new();
        let mut distributed = 0.0;
        for &i in &open {
            let w = if uniform_fallback { 1.0 } else { weights[i] };
            let share = remaining * w / wsum;
            let headroom = fmax - f[i];
            let add = share.min(headroom);
            f[i] += add;
            distributed += add;
            if f[i] < fmax - 1e-15 {
                next_open.push(i);
            }
        }
        remaining -= distributed;
        open = next_open;
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum(v: &[f64]) -> f64 {
        v.iter().sum()
    }

    #[test]
    fn uniform_split() {
        let f = divide_quota(2.4, &[1.0, 2.0, 3.0], 0.2, 1.0, QuotaPolicy::Uniform);
        assert!(f.iter().all(|&x| (x - 0.8).abs() < 1e-12));
    }

    #[test]
    fn by_weight_is_proportional_when_unclamped() {
        let f = divide_quota(1.8, &[1.0, 2.0], 0.2, 1.0, QuotaPolicy::ByWeight);
        // Above the 0.4 floor there are 1.4 units: 1:2 split → 0.667/1.13
        // clamped... 1.13 > 1.0 so redistribution kicks in; check sum and
        // ordering instead of raw proportions.
        assert!((sum(&f) - 1.8).abs() < 1e-9);
        assert!(f[1] > f[0]);
        assert!(f[1] <= 1.0 + 1e-12);
    }

    #[test]
    fn by_weight_exact_when_no_clamping() {
        let f = divide_quota(1.0, &[1.0, 3.0], 0.2, 1.0, QuotaPolicy::ByWeight);
        // 0.6 above the floor, split 1:3 → 0.35 / 0.65.
        assert!((f[0] - 0.35).abs() < 1e-9);
        assert!((f[1] - 0.65).abs() < 1e-9);
    }

    #[test]
    fn redistribution_after_clamping_preserves_the_sum() {
        let f = divide_quota(2.6, &[10.0, 1.0, 1.0], 0.2, 1.0, QuotaPolicy::ByWeight);
        assert!((sum(&f) - 2.6).abs() < 1e-9, "{f:?}");
        assert!((f[0] - 1.0).abs() < 1e-12, "heavy core pinned at max");
        // The other two split the rest evenly (equal weights).
        assert!((f[1] - f[2]).abs() < 1e-9);
        assert!(f.iter().all(|&x| (0.2..=1.0 + 1e-12).contains(&x)));
    }

    #[test]
    fn infeasible_quota_clamps_to_box() {
        let lo = divide_quota(0.0, &[1.0, 1.0], 0.2, 1.0, QuotaPolicy::ByWeight);
        assert!((sum(&lo) - 0.4).abs() < 1e-12);
        let hi = divide_quota(99.0, &[1.0, 1.0], 0.2, 1.0, QuotaPolicy::ByWeight);
        assert!((sum(&hi) - 2.0).abs() < 1e-12);
        assert!(hi.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn critical_first_maxes_the_bottleneck() {
        let f = divide_quota(1.6, &[1.0, 5.0, 1.0], 0.2, 1.0, QuotaPolicy::CriticalFirst);
        assert!((f[1] - 1.0).abs() < 1e-12, "critical core at peak: {f:?}");
        assert!((sum(&f) - 1.6).abs() < 1e-9);
        // Remaining 0.6 split evenly between the equal-weight others.
        assert!((f[0] - 0.3).abs() < 1e-9);
        assert!((f[2] - 0.3).abs() < 1e-9);
    }

    #[test]
    fn critical_first_respects_floor_of_others() {
        // Quota so tight the critical core cannot reach fmax without
        // starving the rest below fmin.
        let f = divide_quota(0.7, &[1.0, 5.0], 0.2, 1.0, QuotaPolicy::CriticalFirst);
        assert!((f[0] - 0.2).abs() < 1e-12);
        assert!((f[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_weights_fall_back_to_uniform() {
        let f = divide_quota(1.2, &[0.0, 0.0, 0.0], 0.2, 1.0, QuotaPolicy::ByWeight);
        assert!(f.iter().all(|&x| (x - 0.4).abs() < 1e-9), "{f:?}");
    }

    #[test]
    fn single_core_group() {
        for policy in [
            QuotaPolicy::Uniform,
            QuotaPolicy::ByWeight,
            QuotaPolicy::CriticalFirst,
        ] {
            let f = divide_quota(0.7, &[2.0], 0.2, 1.0, policy);
            assert_eq!(f.len(), 1);
            assert!((f[0] - 0.7).abs() < 1e-12);
        }
    }

    #[test]
    fn monotone_in_weight() {
        let f = divide_quota(2.0, &[1.0, 2.0, 4.0], 0.2, 1.0, QuotaPolicy::ByWeight);
        assert!(f[0] <= f[1] && f[1] <= f[2], "{f:?}");
    }
}
