//! The UPS power controller (§IV-C): each control period it sets the UPS
//! discharge so the breaker carries exactly `P_cb`.
//!
//! The law is deadbeat — `p_ups = max(0, p_total − P_cb)` — because the
//! duty-cycled discharge circuit of \[24\] actuates within the period and
//! the controlled quantity (`p_cb = p_total − p_ups`) responds
//! instantaneously. An optional first-order filter suppresses
//! measurement-noise chatter in the duty command without breaking the
//! safety direction (filtering is applied only *downward*; increases in
//! required discharge pass through immediately so the breaker is never
//! left overloaded waiting for a filter).

use powersim::units::Watts;
use sprint_control::kalman::Kalman1d;

/// UPS discharge controller.
#[derive(Debug, Clone)]
pub struct UpsPowerController {
    /// Smoothing factor in `[0, 1)` applied when the discharge target
    /// *decreases* (0 = no smoothing).
    pub release_smoothing: f64,
    /// Optional Kalman smoothing of the power measurement before the
    /// deadbeat law. Off by default (the paper's controller is raw
    /// deadbeat); the `ablation_ups_filter` bench quantifies the trade:
    /// less duty-cycle chatter vs a one-filter-lag exposure of the
    /// breaker to fast rises.
    filter: Option<Kalman1d>,
    last: Watts,
}

impl UpsPowerController {
    pub fn new(release_smoothing: f64) -> Self {
        assert!((0.0..1.0).contains(&release_smoothing));
        UpsPowerController {
            release_smoothing,
            filter: None,
            last: Watts::ZERO,
        }
    }

    /// Enable measurement filtering with process variance `q` and
    /// measurement variance `r` (see [`Kalman1d`]).
    pub fn with_filter(mut self, q: f64, r: f64) -> Self {
        self.filter = Some(Kalman1d::new(q, r));
        self
    }

    /// Compute the discharge command from the measured rack power and the
    /// current breaker target.
    pub fn control(&mut self, p_total: Watts, p_cb_target: Watts) -> Watts {
        let p_used = match self.filter.as_mut() {
            Some(f) => Watts(f.update(p_total.0)),
            None => p_total,
        };
        let needed = Watts((p_used.0 - p_cb_target.0).max(0.0));
        let cmd = if needed.0 >= self.last.0 {
            // More discharge needed: act immediately (power safety).
            needed
        } else {
            // Less needed: release gradually to avoid duty chatter.
            Watts(self.release_smoothing * self.last.0 + (1.0 - self.release_smoothing) * needed.0)
        };
        self.last = cmd;
        telemetry::gauge_set("ups_discharge_cmd_w", cmd.0);
        cmd
    }

    /// Reset the filter state (mode changes).
    pub fn reset(&mut self) {
        self.last = Watts::ZERO;
        if let Some(f) = self.filter.as_mut() {
            f.reset();
        }
    }

    pub fn last_command(&self) -> Watts {
        self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_exactly_the_excess_over_p_cb() {
        let mut c = UpsPowerController::new(0.0);
        assert_eq!(c.control(Watts(4300.0), Watts(4000.0)), Watts(300.0));
        assert_eq!(c.control(Watts(3900.0), Watts(4000.0)), Watts::ZERO);
        assert_eq!(c.control(Watts(5000.0), Watts(3200.0)), Watts(1800.0));
    }

    #[test]
    fn increases_are_never_filtered() {
        let mut c = UpsPowerController::new(0.9);
        c.control(Watts(4100.0), Watts(4000.0)); // 100 W
                                                 // Demand jumps: the full 900 W must flow immediately.
        assert_eq!(c.control(Watts(4900.0), Watts(4000.0)), Watts(900.0));
    }

    #[test]
    fn decreases_release_smoothly() {
        let mut c = UpsPowerController::new(0.5);
        c.control(Watts(5000.0), Watts(4000.0)); // 1000 W
        let step1 = c.control(Watts(4000.0), Watts(4000.0));
        // Needed dropped to 0; filtered halfway.
        assert!((step1.0 - 500.0).abs() < 1e-9);
        let step2 = c.control(Watts(4000.0), Watts(4000.0));
        assert!((step2.0 - 250.0).abs() < 1e-9);
    }

    #[test]
    fn breaker_never_sees_more_than_target_with_unfiltered_controller() {
        // Invariant behind Fig. 6(a): cb = total − ups ≤ P_cb whenever
        // total ≥ P_cb.
        let mut c = UpsPowerController::new(0.0);
        for k in 0..1000 {
            let p_total = Watts(3000.0 + 1500.0 * ((k as f64) * 0.37).sin().abs());
            let target = Watts(if k % 450 < 150 { 4000.0 } else { 3200.0 });
            let ups = c.control(p_total, target);
            let cb = p_total.0 - ups.0;
            assert!(cb <= target.0 + 1e-9, "cb={cb} target={target}");
        }
    }

    #[test]
    fn kalman_filter_suppresses_measurement_chatter() {
        // Same noisy measurement stream through both controllers: the
        // filtered one issues far fewer distinct duty changes.
        let mut raw = UpsPowerController::new(0.0);
        let mut filt = UpsPowerController::new(0.0).with_filter(4.0, 900.0);
        let mut seed = 17u64;
        let mut noise = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            ((seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 120.0
        };
        let target = Watts(3200.0);
        let mut raw_moves = 0.0;
        let mut filt_moves = 0.0;
        let (mut last_r, mut last_f) = (0.0, 0.0);
        for _ in 0..500 {
            let p = Watts(3500.0 + noise());
            let r = raw.control(p, target).0;
            let f = filt.control(p, target).0;
            raw_moves += (r - last_r).abs();
            filt_moves += (f - last_f).abs();
            last_r = r;
            last_f = f;
        }
        assert!(
            filt_moves < raw_moves * 0.3,
            "filtered duty travel {filt_moves:.0} vs raw {raw_moves:.0}"
        );
        // And the filtered command still covers the true excess.
        assert!((last_f - 300.0).abs() < 60.0, "last_f={last_f}");
    }

    #[test]
    fn filter_reset_clears_its_state() {
        let mut c = UpsPowerController::new(0.0).with_filter(1.0, 400.0);
        for _ in 0..50 {
            c.control(Watts(5000.0), Watts(3200.0));
        }
        c.reset();
        // First post-reset sample is adopted directly (diffuse prior).
        let out = c.control(Watts(3300.0), Watts(3200.0));
        assert!((out.0 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_filter_memory() {
        let mut c = UpsPowerController::new(0.9);
        c.control(Watts(5000.0), Watts(3200.0));
        c.reset();
        assert_eq!(c.last_command(), Watts::ZERO);
        // After reset a zero-demand step yields exactly zero.
        assert_eq!(c.control(Watts(3000.0), Watts(3200.0)), Watts::ZERO);
    }
}
