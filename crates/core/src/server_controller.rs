//! The server power controller (§V): MPC over the batch cores' DVFS,
//! tracking the allocator's `P_batch` using the Eq. (6) feedback estimate.

use crate::config::SprintConConfig;
use powersim::cpu::FreqScale;
use powersim::server::{InteractivePowerModel, LinearServerModel};
use powersim::units::{NormFreq, Seconds, Utilization, Watts};
use sprint_control::mpc::{MpcController, MpcDecision};
use sprint_control::pid::{Pid, PidConfig};
use sprint_control::qp::QpSolution;
use workloads::batch::BatchJob;

/// MPC-based server power controller for one rack.
#[derive(Debug, Clone)]
pub struct ServerPowerController {
    mpc: MpcController,
    /// Per-server interactive power models (Eq. (5)).
    inter_models: Vec<InteractivePowerModel>,
    /// Per-server linear batch models (Eq. (2)) — shared with the
    /// allocator for budget/floor computations.
    batch_models: Vec<LinearServerModel>,
    batch_cores_per_server: usize,
    num_servers: usize,
    /// The DVFS ladder the commands will be snapped to.
    freq_scale: FreqScale,
    /// Classical fallback loop: takes over when the QP would see a
    /// non-finite input (degradation-ladder rung 3).
    fallback_pid: Pid,
    /// Last finite feedback power, fed to the PID when the live value
    /// is unusable.
    last_finite_p_fb: f64,
    /// Was the fallback active last period (reset-on-recovery edge)?
    fallback_was_active: bool,
    /// Scratch for the per-period `Rⱼ` refresh — reused so the steady
    /// state allocates nothing per control period.
    weight_scratch: Vec<f64>,
}

impl ServerPowerController {
    /// Calibrate the linear models against the server spec and build the
    /// per-core MPC (channel `s·m + j` = core `j` of server `s`).
    pub fn new(cfg: &SprintConConfig) -> Self {
        let m = cfg.batch_cores_per_server();
        assert!(m > 0, "controller needs batch cores to actuate");
        let batch_models: Vec<LinearServerModel> = (0..cfg.num_servers)
            .map(|_| LinearServerModel::fit(&cfg.server, m, Utilization(cfg.assumed_batch_util)))
            .collect();
        let inter_models: Vec<InteractivePowerModel> = (0..cfg.num_servers)
            .map(|_| InteractivePowerModel::fit(&cfg.server, cfg.interactive_cores_per_server))
            .collect();
        let n = cfg.num_servers * m;
        // Per-core gain: the server's K spread across its batch cores.
        let gains: Vec<f64> = batch_models
            .iter()
            .flat_map(|bm| std::iter::repeat_n(bm.k / m as f64, m))
            .collect();
        let fmin = vec![cfg.server.freq_scale.min.0; n];
        let fmax = vec![cfg.server.freq_scale.max.0; n];
        // Fallback PID: a scalar loop on the aggregate batch power, with
        // the plant gain Σk divided out so a unit error nudges the uniform
        // frequency by ~0.5 steps per period (conservative, well inside
        // the stability margin of the first-order Eq. (2) plant).
        let k_total: f64 = batch_models.iter().map(|bm| bm.k).sum();
        let fallback_pid = Pid::new(PidConfig {
            kp: 0.5 / k_total,
            ki: 0.25 / k_total,
            kd: 0.0,
            out_min: cfg.server.freq_scale.min.0,
            out_max: cfg.server.freq_scale.max.0,
            period: cfg.control_period.0,
        });
        ServerPowerController {
            mpc: MpcController::with_backend(cfg.mpc, gains, fmin, fmax, cfg.mpc_backend),
            inter_models,
            batch_models,
            batch_cores_per_server: m,
            num_servers: cfg.num_servers,
            freq_scale: cfg.server.freq_scale,
            fallback_pid,
            last_finite_p_fb: 0.0,
            fallback_was_active: false,
            weight_scratch: Vec::with_capacity(n),
        }
    }

    /// Snap the continuous MPC commands to the DVFS ladder with
    /// error-diffusion rounding: each core's rounding error is carried to
    /// the next core, so the *aggregate* frequency (and hence the rack's
    /// batch power) stays within one P-state step of the optimum instead
    /// of limit-cycling in 64-core quantization jumps.
    fn quantize_with_diffusion(&self, freqs: &mut [f64]) {
        let step = self.freq_scale.step;
        if step <= 0.0 {
            return;
        }
        let mut carry = 0.0;
        for f in freqs.iter_mut() {
            let wanted = *f + carry;
            let snapped = self.freq_scale.quantize(NormFreq(wanted)).0;
            carry = wanted - snapped;
            *f = snapped;
        }
    }

    /// The fitted per-server batch models (the allocator shares them).
    pub fn batch_models(&self) -> &[LinearServerModel] {
        &self.batch_models
    }

    /// Eq. (5): model-predicted interactive power from the measured
    /// per-server interactive utilizations.
    pub fn interactive_power(&self, utils: &[Utilization]) -> Watts {
        assert_eq!(utils.len(), self.num_servers);
        Watts(
            self.inter_models
                .iter()
                .zip(utils)
                .map(|(m, &u)| m.predict(u).0)
                .sum(),
        )
    }

    /// Eq. (6): the feedback power the MPC tracks —
    /// `p_fb = p_total − p_inter` (batch power is not directly
    /// measurable under mixed placement, §IV-C).
    pub fn feedback_power(&self, p_total: Watts, utils: &[Utilization]) -> Watts {
        Watts((p_total.0 - self.interactive_power(utils).0).max(0.0))
    }

    /// Batch power the linear models (Eq. (2)/(3)) predict for the given
    /// per-core frequencies — the reference point for the allocator's
    /// feedback-bias estimate.
    pub fn model_predicted_batch_power(&self, batch_freqs: &[f64]) -> Watts {
        assert_eq!(batch_freqs.len(), self.num_channels());
        let m = self.batch_cores_per_server;
        Watts(
            self.batch_models
                .iter()
                .enumerate()
                .map(|(s, bm)| {
                    let slice = &batch_freqs[s * m..(s + 1) * m];
                    let mean = slice.iter().sum::<f64>() / m as f64;
                    bm.predict(powersim::units::NormFreq(mean)).0
                })
                .sum(),
        )
    }

    /// Refresh the per-core penalty weights `R_ij` from job progress
    /// (§V-B); `jobs` is ordered like the MPC channels.
    pub fn update_weights(&mut self, now: Seconds, jobs: &[BatchJob]) {
        assert_eq!(jobs.len(), self.mpc.num_channels());
        self.weight_scratch.clear();
        self.weight_scratch
            .extend(jobs.iter().map(|j| j.control_weight(now)));
        self.mpc.set_penalty_weights(&self.weight_scratch);
    }

    /// One control period (the 4-step loop of §IV-C): take the measured
    /// total power and utilizations, derive feedback, and return new
    /// frequency commands for every batch core.
    ///
    /// If any input the QP would consume is non-finite (sensor dropout
    /// that slipped past the supervisor, corrupted frequency readback),
    /// the MPC is bypassed for a scalar PID on the last finite feedback
    /// power — degradation-ladder rung 3. The transition is counted in
    /// the `server_ctrl_pid_fallback` telemetry counter.
    pub fn control(
        &mut self,
        p_total: Watts,
        utils: &[Utilization],
        p_batch_target: Watts,
        current_freqs: &[f64],
    ) -> MpcDecision {
        let _timer = telemetry::span("server_controller_control");
        // Check p_total itself: `feedback_power` floors at zero via
        // f64::max, which silently maps NaN to 0.0 and would hide the
        // fault from the QP.
        let inputs_finite = p_total.is_finite()
            && p_batch_target.0.is_finite()
            && utils.iter().all(|u| u.0.is_finite())
            && current_freqs.iter().all(|f| f.is_finite());
        if !inputs_finite {
            return self.control_pid_fallback(p_batch_target);
        }
        if self.fallback_was_active {
            // Recovered: the QP warm-starts from current_freqs on its
            // own, but the PID must not carry stale integral state into
            // the next outage.
            self.fallback_pid.reset();
            self.fallback_was_active = false;
        }
        let p_fb = self.feedback_power(p_total, utils);
        self.last_finite_p_fb = p_fb.0;
        let mut decision = self.mpc.compute(p_fb.0, p_batch_target.0, current_freqs);
        self.quantize_with_diffusion(&mut decision.freqs);
        decision
    }

    /// Rung-3 fallback: uniform-frequency PID on the aggregate batch
    /// power. Deliberately does NOT call `mpc.compute`, so QP telemetry
    /// (`qp_solve_total`) keeps counting real solves only.
    fn control_pid_fallback(&mut self, p_batch_target: Watts) -> MpcDecision {
        telemetry::counter_add("server_ctrl_pid_fallback", 1);
        self.fallback_was_active = true;
        let target = if p_batch_target.0.is_finite() {
            p_batch_target.0.max(0.0)
        } else {
            0.0
        };
        let f = self.fallback_pid.step(target, self.last_finite_p_fb);
        let mut freqs = vec![f; self.num_channels()];
        self.quantize_with_diffusion(&mut freqs);
        let predicted_power = self.model_predicted_batch_power(&freqs).0;
        // Open-loop estimate: assume the plant lands where the model
        // says, so consecutive blind periods don't integrate on a frozen
        // measurement.
        self.last_finite_p_fb = predicted_power;
        MpcDecision {
            freqs,
            predicted_power,
            qp: QpSolution {
                x: vec![],
                kkt_residual: 0.0,
                iterations: 0,
                converged: false,
            },
        }
    }

    pub fn num_channels(&self) -> usize {
        self.mpc.num_channels()
    }

    pub fn batch_cores_per_server(&self) -> usize {
        self.batch_cores_per_server
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powersim::cpu::CoreRole;
    use powersim::rack::Rack;
    use powersim::units::NormFreq;
    use workloads::progress_model::ProgressModel;

    fn cfg() -> SprintConConfig {
        SprintConConfig::paper_default()
    }

    fn rack(c: &SprintConConfig) -> Rack {
        Rack::builder()
            .server(c.server.clone())
            .num_servers(c.num_servers)
            .interactive_cores_per_server(c.interactive_cores_per_server)
            .build()
            .expect("paper config is a valid rack")
    }

    fn interactive_utils(rack: &Rack) -> Vec<Utilization> {
        let mut v = Vec::new();
        rack.interactive_utils_into(&mut v);
        v
    }

    /// Apply the controller's per-core commands to the rack.
    fn apply(rack: &mut Rack, ctrl: &ServerPowerController, freqs: &[f64]) {
        let ids = rack.cores_with_role(CoreRole::Batch);
        assert_eq!(ids.len(), freqs.len());
        let _ = ctrl;
        for (id, &f) in ids.iter().zip(freqs) {
            rack.set_freq(*id, NormFreq(f));
        }
    }

    fn batch_freqs(rack: &Rack) -> Vec<f64> {
        rack.cores_with_role(CoreRole::Batch)
            .iter()
            .map(|&id| rack.freq(id).0)
            .collect()
    }

    #[test]
    fn closed_loop_tracks_p_batch_on_the_nonlinear_plant() {
        // The full loop of §V: MPC designed on the linear model, driving
        // the Horvath–Skadron plant with busy interactive cores.
        let c = cfg();
        let mut ctrl = ServerPowerController::new(&c);
        let mut rk = rack(&c);
        for id in rk.cores_with_role(CoreRole::Interactive) {
            rk.set_util(id, Utilization(0.65));
        }
        for id in rk.cores_with_role(CoreRole::Batch) {
            rk.set_util(id, Utilization(0.95));
        }
        let utils = interactive_utils(&rk);
        let target = Watts(1700.0);
        for _ in 0..40 {
            let p_total = rk.power();
            let d = ctrl.control(p_total, &utils, target, &batch_freqs(&rk));
            apply(&mut rk, &ctrl, &d.freqs);
        }
        // Converged: feedback power within ~6% of target despite model
        // error (nonlinear plant + quantized DVFS).
        let p_fb = ctrl.feedback_power(rk.power(), &utils);
        assert!((p_fb.0 - 1700.0).abs() < 100.0, "p_fb={} target=1700", p_fb);
    }

    #[test]
    fn unreachable_budget_pins_batch_at_peak() {
        let c = cfg();
        let mut ctrl = ServerPowerController::new(&c);
        let mut rk = rack(&c);
        for id in rk.cores_with_role(CoreRole::Batch) {
            rk.set_util(id, Utilization(0.95));
        }
        let utils = interactive_utils(&rk);
        for _ in 0..25 {
            let d = ctrl.control(rk.power(), &utils, Watts(10_000.0), &batch_freqs(&rk));
            apply(&mut rk, &ctrl, &d.freqs);
        }
        for f in batch_freqs(&rk) {
            assert!((f - 1.0).abs() < 1e-9, "f={f}");
        }
    }

    #[test]
    fn tiny_budget_pins_batch_at_floor() {
        let c = cfg();
        let mut ctrl = ServerPowerController::new(&c);
        let mut rk = rack(&c);
        for id in rk.cores_with_role(CoreRole::Batch) {
            rk.set_util(id, Utilization(0.95));
        }
        let utils = interactive_utils(&rk);
        for _ in 0..25 {
            let d = ctrl.control(rk.power(), &utils, Watts(0.0), &batch_freqs(&rk));
            apply(&mut rk, &ctrl, &d.freqs);
        }
        for f in batch_freqs(&rk) {
            assert!((f - 0.2).abs() < 1e-9, "f={f}");
        }
    }

    #[test]
    fn feedback_subtracts_interactive_model() {
        let c = cfg();
        let ctrl = ServerPowerController::new(&c);
        let utils = vec![Utilization(0.5); c.num_servers];
        let p_inter = ctrl.interactive_power(&utils);
        assert!(p_inter.0 > 0.0);
        let p_fb = ctrl.feedback_power(Watts(4000.0), &utils);
        assert!((p_fb.0 - (4000.0 - p_inter.0)).abs() < 1e-9);
        // Floor at zero when interactive model over-predicts.
        assert_eq!(ctrl.feedback_power(Watts(0.0), &utils), Watts(0.0));
    }

    #[test]
    fn progress_weights_starve_the_job_that_can_afford_it() {
        let c = cfg();
        let mut ctrl = ServerPowerController::new(&c);
        let now = Seconds(300.0);
        // Core 0's job is way behind (urgent); all others nearly done.
        let jobs: Vec<BatchJob> = (0..ctrl.num_channels())
            .map(|i| {
                let mut j = BatchJob::new(
                    format!("j{i}"),
                    ProgressModel::new(0.2),
                    600.0,
                    Seconds(600.0),
                );
                let f = if i == 0 { 0.22 } else { 1.0 };
                for _ in 0..300 {
                    j.step(f, Seconds(1.0));
                }
                j
            })
            .collect();
        ctrl.update_weights(now, &jobs);
        let mut rk = rack(&c);
        for id in rk.cores_with_role(CoreRole::Batch) {
            rk.set_util(id, Utilization(0.95));
        }
        let utils = interactive_utils(&rk);
        // Mid-range budget forces a choice.
        for _ in 0..30 {
            let d = ctrl.control(rk.power(), &utils, Watts(1600.0), &batch_freqs(&rk));
            apply(&mut rk, &ctrl, &d.freqs);
        }
        let fs = batch_freqs(&rk);
        let others_mean: f64 = fs[1..].iter().sum::<f64>() / (fs.len() - 1) as f64;
        assert!(
            fs[0] > others_mean + 0.1,
            "urgent core f={} vs others {}",
            fs[0],
            others_mean
        );
    }

    #[test]
    fn nan_measurement_falls_back_to_pid_and_stays_in_range() {
        let c = cfg();
        let mut ctrl = ServerPowerController::new(&c);
        let utils = vec![Utilization(0.5); c.num_servers];
        let n = ctrl.num_channels();
        // Prime the fallback state with one healthy period.
        let healthy = ctrl.control(Watts(4200.0), &utils, Watts(1700.0), &vec![0.6; n]);
        assert!(healthy.qp.converged, "nominal path must run the QP");
        // Sensor dropout: NaN total power must never reach the QP.
        let mut freqs = healthy.freqs.clone();
        for _ in 0..20 {
            let d = ctrl.control(Watts(f64::NAN), &utils, Watts(1700.0), &freqs);
            assert!(!d.qp.converged, "fallback must not fabricate a QP solve");
            assert!(d.qp.iterations == 0 && d.qp.x.is_empty());
            assert!(d.freqs.iter().all(|f| f.is_finite()));
            for &f in &d.freqs {
                let (lo, hi) = (c.server.freq_scale.min.0, c.server.freq_scale.max.0);
                assert!((lo - 1e-9..=hi + 1e-9).contains(&f), "f={f}");
            }
            assert!(d.predicted_power.is_finite());
            freqs = d.freqs;
        }
        // Blind tracking: the open-loop PID should settle near the target
        // according to its own model.
        let blind = ctrl.model_predicted_batch_power(&freqs).0;
        assert!(
            (blind - 1700.0).abs() < 250.0,
            "blind model power {blind} should approach 1700"
        );
        // Recovery: finite inputs go straight back through the MPC.
        let back = ctrl.control(Watts(4200.0), &utils, Watts(1700.0), &freqs);
        assert!(back.qp.converged, "recovered path must use the QP again");
    }

    #[test]
    fn dense_backend_tracks_like_the_structured_default() {
        // The full controller (nonlinear plant, quantized DVFS) under
        // each MPC backend: both loops must settle on the same target.
        // DVFS snapping can flip individual P-state steps between the
        // two, so the comparison is on tracking power, not per-core bits.
        let run = |backend| {
            let mut c = cfg();
            c.mpc_backend = backend;
            let mut ctrl = ServerPowerController::new(&c);
            let mut rk = rack(&c);
            for id in rk.cores_with_role(CoreRole::Interactive) {
                rk.set_util(id, Utilization(0.65));
            }
            for id in rk.cores_with_role(CoreRole::Batch) {
                rk.set_util(id, Utilization(0.95));
            }
            let utils = interactive_utils(&rk);
            for _ in 0..40 {
                let p_total = rk.power();
                let d = ctrl.control(p_total, &utils, Watts(1700.0), &batch_freqs(&rk));
                apply(&mut rk, &ctrl, &d.freqs);
            }
            ctrl.feedback_power(rk.power(), &utils).0
        };
        let structured = run(sprint_control::mpc::MpcBackend::Structured);
        let dense = run(sprint_control::mpc::MpcBackend::DenseFista);
        assert!(
            (structured - dense).abs() < 5.0,
            "structured={structured} dense={dense}"
        );
        assert!((structured - 1700.0).abs() < 100.0, "p_fb={structured}");
    }

    #[test]
    fn interactive_model_is_monotone_in_utilization() {
        let c = cfg();
        let ctrl = ServerPowerController::new(&c);
        let lo = ctrl.interactive_power(&vec![Utilization(0.2); c.num_servers]);
        let hi = ctrl.interactive_power(&vec![Utilization(0.9); c.num_servers]);
        assert!(hi.0 > lo.0 + 500.0, "lo={lo} hi={hi}");
    }
}
