//! The SGCT baseline family (§VI-B).
//!
//! All three variants run the sprinting game with the Cooperative
//! Threshold solution of \[2\] on the same overload schedule (150 s
//! overload / 300 s recovery, shared with SprintCon). They differ in
//! model knowledge and ranking:
//!
//! | variant | power model           | ranking            | trips CB? |
//! |---------|-----------------------|--------------------|-----------|
//! | SGCT    | open-loop linear est. | utilization        | yes (Fig. 5) |
//! | SGCT-V1 | ideal plant oracle    | utilization        | never     |
//! | SGCT-V2 | ideal plant oracle    | interactive first  | never     |
//!
//! Power routing follows \[2\]: sprint power comes from overloading the CB
//! while the schedule allows, and from the UPS *in turn* during CB
//! recovery — the total sprint budget stays constant (the nearly-flat
//! total power of Fig. 6(b)(c)).

use crate::estimate::{oracle_power, CalibratedRackEstimator};
use crate::game::{cooperative_threshold, rank_cores, SprintRanking};
use powersim::rack::Rack;
use powersim::units::{NormFreq, Seconds, Watts};

/// Which baseline to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SgctVariant {
    /// Uncontrolled SGCT: open-loop estimates, trips breakers.
    Uncontrolled,
    /// Idealized: exact plant power, never trips.
    V1Ideal,
    /// Idealized + interactive-priority ranking.
    V2InteractivePriority,
}

/// Baseline configuration.
#[derive(Debug, Clone)]
pub struct SgctConfig {
    pub variant: SgctVariant,
    /// Rated CB capacity.
    pub rated: Watts,
    /// Overload degree (sprint budget = rated × degree).
    pub overload_degree: f64,
    /// Overload / recovery phase lengths (same as \[2\] / SprintCon).
    pub overload_duration: Seconds,
    pub recovery_duration: Seconds,
    /// Frequency of non-sprinting cores.
    pub f_nom: NormFreq,
    /// DVFS-aware (but fan/concavity-blind) estimator for the
    /// uncontrolled variant.
    pub estimator: CalibratedRackEstimator,
    /// Safety factor the *ideal* variants apply to the sprint budget so
    /// the breaker operates just inside the Fig. 2 curve rather than
    /// exactly on it (the \[2\] operating point is specified as safe).
    pub ideal_safety: f64,
    /// During recovery the ideal variants route the UPS so the breaker
    /// carries `rated × this margin`: without it, measurement noise keeps
    /// the breaker dithering around rated and it never cools, defeating
    /// the "never trips" property the paper grants these baselines.
    pub ideal_recovery_margin: f64,
}

impl SgctConfig {
    /// Paper-default configuration for a variant.
    pub fn paper_default(variant: SgctVariant) -> Self {
        SgctConfig {
            variant,
            rated: Watts(3200.0),
            overload_degree: 1.25,
            overload_duration: Seconds(150.0),
            recovery_duration: Seconds(300.0),
            f_nom: NormFreq(0.7),
            estimator: CalibratedRackEstimator::from_spec(
                &powersim::server::ServerSpec::paper_default(),
            ),
            ideal_safety: 0.995,
            ideal_recovery_margin: 0.99,
        }
    }

    /// The constant total sprint budget.
    pub fn sprint_budget(&self) -> Watts {
        Watts(self.rated.0 * self.overload_degree)
    }
}

/// What the baseline tells the plant to do this epoch.
#[derive(Debug, Clone)]
pub struct SgctCommand {
    /// Frequency per core, rack order (server-major).
    pub freqs: Vec<NormFreq>,
    /// UPS discharge target.
    pub ups_target: Watts,
    /// The baseline believes it is in a CB-overload phase.
    pub overloading: bool,
    /// Cores granted a sprint this epoch.
    pub sprinted: usize,
}

/// A stateful SGCT policy.
#[derive(Debug, Clone)]
pub struct SgctPolicy {
    pub cfg: SgctConfig,
    /// Time into the current overload/recovery cycle.
    phase_clock: Seconds,
}

impl SgctPolicy {
    pub fn new(cfg: SgctConfig) -> Self {
        assert!(cfg.overload_degree > 1.0);
        SgctPolicy {
            cfg,
            phase_clock: Seconds::ZERO,
        }
    }

    /// The planned (open-loop!) schedule: SGCT alternates overload and
    /// recovery on timers, with no feedback from the breaker state.
    pub fn planned_overloading(&self) -> bool {
        let cycle = self.cfg.overload_duration.0 + self.cfg.recovery_duration.0;
        let t = self.phase_clock.0 % cycle;
        t < self.cfg.overload_duration.0
    }

    /// One decision epoch.
    ///
    /// * `p_total_measured` — power-monitor reading used for the UPS
    ///   routing decision;
    /// * `p_overhead` — rack power *outside* the servers (cooling fans).
    ///   The clairvoyant V1/V2 variants subtract it from their budget —
    ///   that is part of what makes them "ideal". Uncontrolled SGCT has
    ///   no model of it and ignores it, which (together with the concave
    ///   non-CPU power its linear model misses) is why its actual CB
    ///   power rides above the budget and trips the breaker (Fig. 5).
    pub fn step(
        &mut self,
        dt: Seconds,
        rack: &Rack,
        p_total_measured: Watts,
        p_overhead: Watts,
    ) -> SgctCommand {
        let overloading = self.planned_overloading();
        self.phase_clock += dt;

        let ranking = match self.cfg.variant {
            SgctVariant::V2InteractivePriority => SprintRanking::InteractiveFirst,
            _ => SprintRanking::ByUtilization,
        };
        let ranked = rank_cores(rack, ranking);
        let budget = match self.cfg.variant {
            SgctVariant::Uncontrolled => self.cfg.sprint_budget(),
            SgctVariant::V1Ideal | SgctVariant::V2InteractivePriority => {
                Watts((self.cfg.sprint_budget().0 * self.cfg.ideal_safety - p_overhead.0).max(0.0))
            }
        };
        type PowerFn = Box<dyn Fn(&[NormFreq]) -> Watts>;
        let (fractional, power_of): (bool, PowerFn) = match self.cfg.variant {
            SgctVariant::Uncontrolled => {
                let est = self.cfg.estimator;
                let rk = rack.clone();
                (false, Box::new(move |f: &[NormFreq]| est.estimate(&rk, f)))
            }
            SgctVariant::V1Ideal | SgctVariant::V2InteractivePriority => {
                let rk = rack.clone();
                (true, Box::new(move |f: &[NormFreq]| oracle_power(&rk, f)))
            }
        };
        let assignment = cooperative_threshold(
            rack,
            &ranked,
            self.cfg.f_nom,
            budget,
            fractional,
            &*power_of,
        );

        // Power routing: overload phase → CB is the only sprint source;
        // recovery phase → CB at (just under) rated, UPS supplies the
        // excess. The ideal variants hold the breaker a hair below rated
        // so it actually cools; uncontrolled SGCT routes sloppily against
        // its raw rating.
        let recovery_cb = match self.cfg.variant {
            SgctVariant::Uncontrolled => self.cfg.rated.0,
            _ => self.cfg.rated.0 * self.cfg.ideal_recovery_margin,
        };
        let ups_target = if overloading {
            match self.cfg.variant {
                // Uncontrolled SGCT: the CB is the only knob at the
                // beginning (Fig. 5) — whatever the plant draws, it takes.
                SgctVariant::Uncontrolled => Watts::ZERO,
                // Ideal variants keep the CB *exactly* at the target: the
                // UPS shaves the residual between plan and plant (demand
                // drift within the period), which is what "ideally manage
                // the power consumption" buys them.
                _ => Watts((p_total_measured.0 - budget.0).max(0.0)),
            }
        } else {
            Watts((p_total_measured.0 - recovery_cb).max(0.0))
        };
        SgctCommand {
            freqs: assignment.freqs,
            ups_target,
            overloading,
            sprinted: assignment.sprinted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powersim::cpu::CoreRole;
    use powersim::server::ServerSpec;
    use powersim::units::Utilization;

    fn rack() -> Rack {
        let mut rk = Rack::builder()
            .server(ServerSpec::paper_default())
            .num_servers(16)
            .interactive_cores_per_server(4)
            .build()
            .expect("valid rack");
        for id in rk.cores_with_role(CoreRole::Interactive) {
            rk.set_util(id, Utilization(0.65));
        }
        for id in rk.cores_with_role(CoreRole::Batch) {
            rk.set_util(id, Utilization(0.97));
        }
        rk
    }

    #[test]
    fn schedule_alternates_on_timers_without_feedback() {
        let mut p = SgctPolicy::new(SgctConfig::paper_default(SgctVariant::Uncontrolled));
        let rk = rack();
        let mut phases = Vec::new();
        for _ in 0..900 {
            let cmd = p.step(Seconds(1.0), &rk, Watts(4000.0), Watts::ZERO);
            phases.push(cmd.overloading);
        }
        // 150 on, 300 off, repeating.
        assert!(phases[..150].iter().all(|&o| o));
        assert!(phases[150..450].iter().all(|&o| !o));
        assert!(phases[450..600].iter().all(|&o| o));
    }

    #[test]
    fn uncontrolled_variant_overshoots_its_budget_on_the_real_plant() {
        // The Fig. 5 mechanism: SGCT believes it hit 4.0 kW through the
        // breaker, but the breaker actually carries server power it
        // mis-modelled *plus* the cooling fans it does not model at all.
        let mut p = SgctPolicy::new(SgctConfig::paper_default(SgctVariant::Uncontrolled));
        let rk = rack();
        let cmd = p.step(Seconds(1.0), &rk, Watts(4000.0), Watts::ZERO);
        let believed = p.cfg.estimator.estimate(&rk, &cmd.freqs);
        let truth = oracle_power(&rk, &cmd.freqs);
        assert!(believed.0 <= p.cfg.sprint_budget().0 + 1e-9);
        // Fan power at this load (hot day, near-saturated rack).
        let mut fan = powersim::fan::FanModel::constant_ambient(40.0, 160.0, 25.0, 27.0);
        let fan_w = fan.step(truth.0 / 4800.0, Seconds(1.0));
        let cb_load = truth.0 + fan_w.0; // no UPS during SGCT overload
        assert!(
            cb_load > p.cfg.sprint_budget().0 * 1.015,
            "cb_load={cb_load} budget={}",
            p.cfg.sprint_budget()
        );
        // ...which overloads the 3.2 kW breaker beyond the planned 1.25
        // and therefore trips before the planned 150 s window ends.
        let spec = powersim::breaker::BreakerSpec::paper_default();
        let trip = spec.trip_time(cb_load / 3200.0);
        assert!(
            trip.0 < 150.0,
            "overload {:.3} must trip inside the window, trip={trip}",
            cb_load / 3200.0
        );
    }

    #[test]
    fn ideal_variant_lands_exactly_on_its_safe_budget() {
        let mut p = SgctPolicy::new(SgctConfig::paper_default(SgctVariant::V1Ideal));
        let rk = rack();
        let cmd = p.step(Seconds(1.0), &rk, Watts(4000.0), Watts::ZERO);
        let truth = oracle_power(&rk, &cmd.freqs);
        let expect = 4000.0 * p.cfg.ideal_safety;
        assert!(
            (truth.0 - expect).abs() < 1.0,
            "ideal variant must hit {expect} exactly, got {truth}"
        );
        // And that operating point sits strictly inside the trip curve
        // for the full planned overload window.
        let spec = powersim::breaker::BreakerSpec::paper_default();
        assert!(spec.trip_time(expect / 3200.0).0 > 150.0);
    }

    #[test]
    fn v1_sprints_batch_v2_sprints_interactive() {
        let rk = rack();
        let mut v1 = SgctPolicy::new(SgctConfig::paper_default(SgctVariant::V1Ideal));
        let mut v2 = SgctPolicy::new(SgctConfig::paper_default(
            SgctVariant::V2InteractivePriority,
        ));
        let c1 = v1.step(Seconds(1.0), &rk, Watts(4000.0), Watts::ZERO);
        let c2 = v2.step(Seconds(1.0), &rk, Watts(4000.0), Watts::ZERO);
        let mean = |cmd: &SgctCommand, role: CoreRole| -> f64 {
            let ids = rk.cores_with_role(role);
            ids.iter()
                .map(|id| cmd.freqs[id.server * 8 + id.core].0)
                .sum::<f64>()
                / ids.len() as f64
        };
        // V1: batch outranks interactive (higher utilization).
        assert!(mean(&c1, CoreRole::Batch) > mean(&c1, CoreRole::Interactive) + 0.1);
        // V2: interactive sprints first.
        assert!(mean(&c2, CoreRole::Interactive) > mean(&c2, CoreRole::Batch) + 0.1);
        // Both spend the same total budget.
        let p1 = oracle_power(&rk, &c1.freqs).0;
        let p2 = oracle_power(&rk, &c2.freqs).0;
        assert!((p1 - p2).abs() < 2.0, "p1={p1} p2={p2}");
    }

    #[test]
    fn ups_covers_excess_only_during_recovery() {
        let mut p = SgctPolicy::new(SgctConfig::paper_default(SgctVariant::V1Ideal));
        let rk = rack();
        // Overload phase: the ideal variant only shaves the residual
        // above its safe budget (4000 measured − 3980 target = 20 W).
        let c = p.step(Seconds(1.0), &rk, Watts(4000.0), Watts::ZERO);
        assert!(c.overloading);
        assert!((c.ups_target.0 - 20.0).abs() < 1e-9, "ups={}", c.ups_target);
        // The *uncontrolled* variant takes whatever the breaker gives.
        let mut u = SgctPolicy::new(SgctConfig::paper_default(SgctVariant::Uncontrolled));
        let cu = u.step(Seconds(1.0), &rk, Watts(4200.0), Watts::ZERO);
        assert!(cu.overloading);
        assert_eq!(cu.ups_target, Watts::ZERO);
        // Jump into recovery.
        for _ in 0..150 {
            p.step(Seconds(1.0), &rk, Watts(4000.0), Watts::ZERO);
        }
        let c = p.step(Seconds(1.0), &rk, Watts(4000.0), Watts::ZERO);
        assert!(!c.overloading);
        // 4000 − 3200×0.99 = 832 (the ideal variants leave the breaker a
        // cooling margin during recovery).
        assert!(
            (c.ups_target.0 - 832.0).abs() < 1e-9,
            "ups={}",
            c.ups_target
        );
    }

    #[test]
    fn light_load_does_not_spend_the_whole_budget() {
        // "unless the workloads do not need so much power" — idle-ish
        // interactive cores: everyone sprints and power stays below 4 kW.
        let mut rk = rack();
        for id in rk.cores_with_role(CoreRole::Interactive) {
            rk.set_util(id, Utilization(0.1));
        }
        for id in rk.cores_with_role(CoreRole::Batch) {
            rk.set_util(id, Utilization(0.3));
        }
        let mut p = SgctPolicy::new(SgctConfig::paper_default(SgctVariant::V1Ideal));
        let cmd = p.step(Seconds(1.0), &rk, Watts(3000.0), Watts::ZERO);
        assert_eq!(cmd.sprinted, 128);
        assert!(oracle_power(&rk, &cmd.freqs).0 < 4000.0);
    }
}
