//! The sprinting game's Cooperative Threshold assignment \[2\].
//!
//! Each epoch, cores "bid" for sprint power; the cooperative solution
//! maximizes system performance by sprinting the cores with the highest
//! demand until the power budget is exhausted. Following §VI-B we use
//! processor utilization as the demand metric, and rank either purely by
//! utilization (SGCT, SGCT-V1) or interactive-first (SGCT-V2).

use powersim::cpu::CoreRole;
use powersim::rack::{CoreId, Rack};
use powersim::units::{NormFreq, Watts};

/// How cores are ranked when bidding for sprint power.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SprintRanking {
    /// Pure utilization order (higher utilization = higher demand). Batch
    /// cores — always busy — win ties, which is what makes the
    /// customized SGCT favor batch work (§VI-B).
    ByUtilization,
    /// Interactive cores first (each group utilization-ordered) — the
    /// SGCT-V2 customization.
    InteractiveFirst,
}

/// Rank every core of the rack for this epoch, highest priority first.
pub fn rank_cores(rack: &Rack, ranking: SprintRanking) -> Vec<CoreId> {
    let mut ids: Vec<CoreId> = Vec::with_capacity(rack.num_cores());
    for s in 0..rack.num_servers() {
        for c in 0..rack.cores_per_server() {
            ids.push(CoreId { server: s, core: c });
        }
    }
    let key = |id: &CoreId| -> (u8, f64, u8) {
        let role = rack.role_of(*id);
        let (class, tie) = match ranking {
            // §VI-B: utilization is the demand metric; batch cores (which
            // never idle between requests) win *exact* ties only.
            SprintRanking::ByUtilization => (
                0,
                match role {
                    CoreRole::Batch => 1,
                    CoreRole::Interactive => 0,
                },
            ),
            // SGCT-V2: interactive cores outrank batch outright, each
            // group utilization-ordered.
            SprintRanking::InteractiveFirst => (
                match role {
                    CoreRole::Interactive => 1,
                    CoreRole::Batch => 0,
                },
                0,
            ),
        };
        (class, rack.util(*id).0, tie)
    };
    // Descending by (class, utilization, tie); ascending CoreId as the
    // final deterministic tiebreak.
    ids.sort_by(|a, b| {
        let (ca, ua, ta) = key(a);
        let (cb, ub, tb) = key(b);
        cb.cmp(&ca)
            .then(ub.partial_cmp(&ua).expect("NaN utilization"))
            .then(tb.cmp(&ta))
            .then(a.cmp(b))
    });
    ids
}

/// Result of one cooperative-threshold assignment.
#[derive(Debug, Clone)]
pub struct Assignment {
    /// Frequency command per core, rack order (server-major).
    pub freqs: Vec<NormFreq>,
    /// Cores granted a full sprint.
    pub sprinted: usize,
    /// Power the deciding model predicts for this assignment.
    pub predicted_power: Watts,
}

/// Greedy cooperative-threshold assignment: walk the ranked list,
/// promoting cores from `f_nom` to peak while the predicted power stays
/// within `budget`. When `fractional` is set (the idealized variants),
/// the first core that does not fit whole gets the exact intermediate
/// frequency that exhausts the budget.
pub fn cooperative_threshold(
    rack: &Rack,
    ranked: &[CoreId],
    f_nom: NormFreq,
    budget: Watts,
    fractional: bool,
    power_of: &dyn Fn(&[NormFreq]) -> Watts,
) -> Assignment {
    let total_cores = rack.num_cores();
    assert_eq!(ranked.len(), total_cores, "ranking must cover every core");
    let index = |id: &CoreId| -> usize {
        // Server-major layout with homogeneous servers.
        id.server * rack.cores_per_server() + id.core
    };

    let mut freqs = vec![f_nom; total_cores];
    let mut power = power_of(&freqs);
    let mut sprinted = 0;
    if power.0 > budget.0 {
        // Even the nominal configuration exceeds the budget — nothing to
        // sprint; the schedule owner deals with it.
        return Assignment {
            freqs,
            sprinted: 0,
            predicted_power: power,
        };
    }
    for id in ranked {
        let i = index(id);
        let prev = freqs[i];
        freqs[i] = NormFreq::PEAK;
        let with = power_of(&freqs);
        if with.0 <= budget.0 {
            power = with;
            sprinted += 1;
            continue;
        }
        if fractional {
            // Secant solve for the frequency that exactly meets budget —
            // power is affine in this core's frequency for both the
            // estimator and (near-affine) for the plant, so a couple of
            // iterations suffice; bisection guards convergence.
            let mut lo = prev.0;
            let mut hi = 1.0;
            for _ in 0..40 {
                let mid = 0.5 * (lo + hi);
                freqs[i] = NormFreq(mid);
                if power_of(&freqs).0 <= budget.0 {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            freqs[i] = NormFreq(lo);
            power = power_of(&freqs);
        } else {
            freqs[i] = prev;
        }
        break;
    }
    Assignment {
        freqs,
        sprinted,
        predicted_power: power,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powersim::server::ServerSpec;
    use powersim::units::Utilization;

    fn rack() -> Rack {
        let mut rk = Rack::builder()
            .server(ServerSpec::paper_default())
            .num_servers(2)
            .interactive_cores_per_server(4)
            .build()
            .expect("valid rack");
        // Interactive cores moderately busy, batch cores saturated.
        for id in rk.cores_with_role(CoreRole::Interactive) {
            rk.set_util(id, Utilization(0.6));
        }
        for id in rk.cores_with_role(CoreRole::Batch) {
            rk.set_util(id, Utilization(1.0));
        }
        rk
    }

    fn est() -> crate::estimate::LinearRackEstimator {
        crate::estimate::LinearRackEstimator::from_spec(&ServerSpec::paper_default())
    }

    #[test]
    fn by_utilization_puts_batch_first() {
        let rk = rack();
        let ranked = rank_cores(&rk, SprintRanking::ByUtilization);
        let first_eight: Vec<CoreRole> = ranked[..8].iter().map(|id| rk.role_of(*id)).collect();
        assert!(first_eight.iter().all(|r| *r == CoreRole::Batch));
    }

    #[test]
    fn interactive_first_overrides_utilization() {
        let rk = rack();
        let ranked = rank_cores(&rk, SprintRanking::InteractiveFirst);
        let first_eight: Vec<CoreRole> = ranked[..8].iter().map(|id| rk.role_of(*id)).collect();
        assert!(first_eight.iter().all(|r| *r == CoreRole::Interactive));
    }

    #[test]
    fn ranking_is_deterministic_and_complete() {
        let rk = rack();
        let a = rank_cores(&rk, SprintRanking::ByUtilization);
        let b = rank_cores(&rk, SprintRanking::ByUtilization);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        let mut sorted = a.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 16, "every core ranked exactly once");
    }

    #[test]
    fn big_budget_sprints_everyone() {
        let rk = rack();
        let ranked = rank_cores(&rk, SprintRanking::ByUtilization);
        let e = est();
        let a = cooperative_threshold(&rk, &ranked, NormFreq(0.5), Watts(10_000.0), false, &|f| {
            e.estimate(&rk, f)
        });
        assert_eq!(a.sprinted, 16);
        assert!(a.freqs.iter().all(|f| (f.0 - 1.0).abs() < 1e-12));
    }

    #[test]
    fn tight_budget_sprints_only_the_top() {
        let rk = rack();
        let ranked = rank_cores(&rk, SprintRanking::ByUtilization);
        let e = est();
        // Nominal config power + a bit: room for only a few sprints.
        let nominal = e.estimate(&rk, &[NormFreq(0.5); 16]);
        let budget = Watts(nominal.0 + 40.0);
        let a = cooperative_threshold(&rk, &ranked, NormFreq(0.5), budget, false, &|f| {
            e.estimate(&rk, f)
        });
        assert!(a.sprinted > 0 && a.sprinted < 16, "sprinted={}", a.sprinted);
        assert!(a.predicted_power.0 <= budget.0 + 1e-9);
        // The sprinted cores are exactly the top of the ranking.
        for (rank, id) in ranked.iter().enumerate() {
            let i = id.server * 8 + id.core;
            if rank < a.sprinted {
                assert_eq!(a.freqs[i], NormFreq::PEAK);
            }
        }
    }

    #[test]
    fn fractional_assignment_exhausts_the_budget_exactly() {
        let rk = rack();
        let ranked = rank_cores(&rk, SprintRanking::ByUtilization);
        let nominal = crate::estimate::oracle_power(&rk, &[NormFreq(0.5); 16]);
        let budget = Watts(nominal.0 + 55.0);
        let a = cooperative_threshold(&rk, &ranked, NormFreq(0.5), budget, true, &|f| {
            crate::estimate::oracle_power(&rk, f)
        });
        // Power lands on the budget to within the bisection tolerance.
        assert!(
            (a.predicted_power.0 - budget.0).abs() < 0.5,
            "p={} budget={}",
            a.predicted_power,
            budget
        );
        // Exactly one core sits strictly between nominal and peak.
        let partial = a
            .freqs
            .iter()
            .filter(|f| f.0 > 0.5 + 1e-9 && f.0 < 1.0 - 1e-9)
            .count();
        assert_eq!(partial, 1);
    }

    #[test]
    fn impossible_budget_returns_nominal() {
        let rk = rack();
        let ranked = rank_cores(&rk, SprintRanking::ByUtilization);
        let e = est();
        let a = cooperative_threshold(&rk, &ranked, NormFreq(0.5), Watts(10.0), false, &|f| {
            e.estimate(&rk, f)
        });
        assert_eq!(a.sprinted, 0);
        assert!(a.freqs.iter().all(|f| (f.0 - 0.5).abs() < 1e-12));
    }
}
