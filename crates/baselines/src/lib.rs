//! # baselines — the state-of-the-art sprinting baselines of §VI-B
//!
//! SprintCon is evaluated against the sprinting game of Fan et al. \[2\]
//! run with its Cooperative Threshold solution (SGCT) and two idealized
//! variants the paper constructs for a fair power-safety comparison:
//!
//! * [`sgct::SgctVariant::Uncontrolled`] — SGCT as-is: open-loop power
//!   estimates, trips circuit breakers (Fig. 5);
//! * [`sgct::SgctVariant::V1Ideal`] — clairvoyant power management that
//!   lands exactly on the budget, never trips;
//! * [`sgct::SgctVariant::V2InteractivePriority`] — V1 plus priority for
//!   interactive cores.
//!
//! Modules: [`estimate`] (the open-loop model and the ideal oracle),
//! [`game`] (cooperative-threshold assignment), [`sgct`] (the stateful
//! policies).

#![forbid(unsafe_code)]

pub mod estimate;
pub mod game;
pub mod sgct;

pub use estimate::{oracle_power, CalibratedRackEstimator, LinearRackEstimator};
pub use game::{cooperative_threshold, rank_cores, Assignment, SprintRanking};
pub use sgct::{SgctCommand, SgctConfig, SgctPolicy, SgctVariant};
