//! Open-loop rack power estimation — the model knowledge the
//! *uncontrolled* SGCT baseline is allowed.
//!
//! SGCT plans sprint assignments against a static linear model (idle →
//! full interpolated over per-core `f·u`), with no feedback correction.
//! The model systematically *underestimates* the real plant: it knows
//! nothing about the cooling fans, and the plant's non-CPU power is
//! concave in throughput (partial loads draw disproportionately much).
//! That gap is exactly why Fig. 5 shows SGCT's actual CB power riding
//! slightly above its budget and tripping the breaker — no artificial
//! error is injected anywhere.

use powersim::cpu::CoreRole;
use powersim::rack::{CoreId, Rack};
use powersim::units::{NormFreq, Watts};

/// Linear idle↔full interpolation estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearRackEstimator {
    /// Idle power per server, W.
    pub idle_per_server: f64,
    /// Dynamic span attributed to each core at peak frequency and full
    /// utilization, W.
    pub span_per_core: f64,
}

impl LinearRackEstimator {
    /// Build from the server spec the operator would read off the
    /// datasheet (idle/full wall power, core count).
    pub fn from_spec(spec: &powersim::server::ServerSpec) -> Self {
        LinearRackEstimator {
            idle_per_server: spec.idle_watts,
            span_per_core: (spec.full_watts - spec.idle_watts) / spec.num_cores as f64,
        }
    }

    /// Estimate rack power for a candidate per-core frequency vector
    /// (rack order: server-major), using the rack's *current measured*
    /// utilizations.
    pub fn estimate(&self, rack: &Rack, freqs: &[NormFreq]) -> Watts {
        assert_eq!(freqs.len(), rack.num_cores(), "one frequency per core");
        let iv = rack.role(CoreRole::Interactive);
        let bv = rack.role(CoreRole::Batch);
        let cps = rack.cores_per_server();
        let mut total = 0.0;
        for s in 0..rack.num_servers() {
            total += self.idle_per_server;
            // Candidate freqs are in core order (interactive block first
            // within each server — the rack's core numbering).
            let base = s * cps;
            let utils = iv.server_utils(s).iter().chain(bv.server_utils(s));
            for (k, &u) in utils.enumerate() {
                let f = freqs[base + k];
                total += self.span_per_core * f.0.clamp(0.0, 1.0) * u.clamp(0.0, 1.0);
            }
        }
        Watts(total)
    }
}

/// DVFS-aware open-loop estimator — what a careful operator calibrates
/// from the CPU's published P-state power table.
///
/// Models the per-core cubic DVFS law exactly (that part *is* in the
/// datasheet) and a linear throughput term for non-CPU power, but knows
/// nothing about (a) the concavity of real non-CPU power in throughput
/// and (b) the cooling fans. Both gaps bias it *low* at sprint operating
/// points, which is the Fig. 5 trip mechanism: SGCT plans to the budget
/// and the breaker carries more.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibratedRackEstimator {
    pub idle_per_server: f64,
    /// Peak active CPU power per core, W.
    pub cpu_peak_per_core: f64,
    /// Fraction of CPU active power following `f³`.
    pub cubic_fraction: f64,
    /// Non-CPU dynamic power per server at full throughput, W (modelled
    /// as linear in mean `f·u`).
    pub noncpu_span: f64,
}

impl CalibratedRackEstimator {
    pub fn from_spec(spec: &powersim::server::ServerSpec) -> Self {
        let dynamic = spec.full_watts - spec.idle_watts;
        CalibratedRackEstimator {
            idle_per_server: spec.idle_watts,
            cpu_peak_per_core: spec.core_law.peak_active_watts,
            cubic_fraction: spec.core_law.cubic_fraction,
            noncpu_span: dynamic * spec.noncpu_fraction,
        }
    }

    /// Estimate rack power for a candidate frequency vector using the
    /// rack's measured utilizations.
    pub fn estimate(&self, rack: &Rack, freqs: &[NormFreq]) -> Watts {
        assert_eq!(freqs.len(), rack.num_cores(), "one frequency per core");
        let iv = rack.role(CoreRole::Interactive);
        let bv = rack.role(CoreRole::Batch);
        let cps = rack.cores_per_server();
        let m = cps as f64;
        let mut total = 0.0;
        for s in 0..rack.num_servers() {
            total += self.idle_per_server;
            let mut tp = 0.0;
            let base = s * cps;
            let utils = iv.server_utils(s).iter().chain(bv.server_utils(s));
            for (k, &util) in utils.enumerate() {
                let f = freqs[base + k].0.clamp(0.0, 1.0);
                let u = util.clamp(0.0, 1.0);
                let shape = self.cubic_fraction * f.powi(3) + (1.0 - self.cubic_fraction) * f;
                total += self.cpu_peak_per_core * shape * u;
                tp += f * u;
            }
            // Linear (not concave) non-CPU model: the calibration error.
            total += self.noncpu_span * (tp / m);
        }
        Watts(total)
    }
}

/// The oracle the *idealized* SGCT-V1/V2 variants are granted (§VI-B:
/// "ideally manage the processor frequency ... though this is not
/// feasible in practice without closed-loop control"): exact plant power
/// for a candidate frequency vector.
pub fn oracle_power(rack: &Rack, freqs: &[NormFreq]) -> Watts {
    let mut probe = rack.clone();
    assert_eq!(freqs.len(), probe.num_cores(), "one frequency per core");
    let cps = probe.cores_per_server();
    for (idx, &f) in freqs.iter().enumerate() {
        let id = CoreId {
            server: idx / cps,
            core: idx % cps,
        };
        // Ideal actuation: continuous frequencies, no ladder snap.
        probe.set_freq_unquantized(id, f.clamp(NormFreq(0.0), NormFreq(1.0)));
    }
    probe.power()
}

#[cfg(test)]
mod tests {
    use super::*;
    use powersim::cpu::CoreRole;
    use powersim::server::ServerSpec;
    use powersim::units::Utilization;

    fn rack() -> Rack {
        Rack::builder()
            .server(ServerSpec::paper_default())
            .num_servers(4)
            .interactive_cores_per_server(4)
            .build()
            .expect("valid rack")
    }

    fn est() -> LinearRackEstimator {
        LinearRackEstimator::from_spec(&ServerSpec::paper_default())
    }

    #[test]
    fn endpoints_match_the_datasheet() {
        let mut rk = rack();
        let n = rk.num_servers() * 8;
        // Idle: exact.
        let idle = est().estimate(&rk, &vec![NormFreq(0.2); n]);
        assert!((idle.0 - 4.0 * 150.0).abs() < 1e-9);
        // Full: exact.
        for id in rk
            .cores_with_role(CoreRole::Interactive)
            .into_iter()
            .chain(rk.cores_with_role(CoreRole::Batch))
        {
            rk.set_util(id, Utilization::FULL);
        }
        let full = est().estimate(&rk, &vec![NormFreq(1.0); n]);
        assert!((full.0 - 4.0 * 300.0).abs() < 1e-9);
    }

    #[test]
    fn underestimates_partial_utilization_at_peak_frequency() {
        // Part of the Fig. 5 mechanism: the plant's non-CPU power is
        // concave in throughput, so at partial utilization the linear
        // estimate sits below the true plant power. (The other, larger
        // part of SGCT's blind spot — cooling-fan power — is added by the
        // simulation on top of the rack.)
        let mut rk = rack();
        for role in [CoreRole::Interactive, CoreRole::Batch] {
            for id in rk.cores_with_role(role) {
                rk.set_util(id, Utilization(0.3));
            }
        }
        let freqs = vec![NormFreq(1.0); 32];
        let estimate = est().estimate(&rk, &freqs);
        let truth = oracle_power(&rk, &freqs);
        assert!(
            truth.0 > estimate.0 * 1.01,
            "truth={truth} estimate={estimate}"
        );
    }

    #[test]
    fn overestimates_deeply_throttled_cores() {
        // The flip side: the linear model charges throttled cores f·u
        // while the real cubic DVFS law makes them much cheaper — so
        // SGCT's estimate is not uniformly biased, it is simply *wrong*
        // open-loop, which is the paper's point about needing feedback.
        let mut rk = rack();
        for role in [CoreRole::Interactive, CoreRole::Batch] {
            for id in rk.cores_with_role(role) {
                rk.set_util(id, Utilization(1.0));
            }
        }
        let freqs = vec![NormFreq(0.4); 32];
        let estimate = est().estimate(&rk, &freqs);
        let truth = oracle_power(&rk, &freqs);
        assert!(
            estimate.0 > truth.0 * 1.02,
            "estimate={estimate} truth={truth}"
        );
    }

    #[test]
    fn oracle_matches_the_plant_exactly() {
        let mut rk = rack();
        for id in rk.cores_with_role(CoreRole::Batch) {
            rk.set_util(id, Utilization(0.9));
        }
        let mut freqs = vec![NormFreq(0.5); 32];
        freqs[7] = NormFreq(0.85);
        let p = oracle_power(&rk, &freqs);
        // Apply the same frequencies for real (continuous scale needed
        // to dodge ladder quantization in the comparison).
        let mut applied = rk.clone();
        applied.set_freq_scale(powersim::cpu::FreqScale::continuous());
        for (idx, &f) in freqs.iter().enumerate() {
            let id = CoreId {
                server: idx / 8,
                core: idx % 8,
            };
            applied.set_freq(id, f);
        }
        assert!((applied.power().0 - p.0).abs() < 1e-9);
    }

    #[test]
    fn estimate_monotone_in_frequency() {
        let mut rk = rack();
        for id in rk.cores_with_role(CoreRole::Batch) {
            rk.set_util(id, Utilization(1.0));
        }
        let lo = est().estimate(&rk, &vec![NormFreq(0.3); 32]);
        let hi = est().estimate(&rk, &vec![NormFreq(0.9); 32]);
        assert!(hi.0 > lo.0);
    }
}
