#!/usr/bin/env python3
"""Diff freshly produced BENCH_*.json files against the committed copies.

Only machine-independent fields are compared: digests, gate booleans,
convergence/round counts, and fixed benchmark dimensions. Wall-clock
numbers, per-second throughputs, and host properties are excluded —
shared CI runners are far too noisy for hard thresholds, and those
fields are tracked via uploaded artifacts instead.

Usage: bench_regression.py BENCH_engine.json BENCH_datacenter.json ...

Each argument names a fresh file in the working tree; the baseline is
read from `git show HEAD:<name>` so the script works both locally
(where the bench overwrote the committed copy in place) and in CI.
Files without a committed baseline are skipped with a warning so a new
benchmark can land before its baseline does.
"""

import json
import subprocess
import sys

# name -> list of dotted key paths that must match the committed copy
# exactly. Keep every entry machine-independent: anything influenced by
# core count, wall clock, or allocator jitter does not belong here.
WHITELIST = {
    "BENCH_engine.json": [
        "campaign.runs",
        "determinism.checked",
        "determinism.bit_identical",
        "mpc_hot_path.channels",
        "mpc_hot_path.periods",
        "mpc_hot_path.agreement.pass",
        "mpc_hot_path.oracle_kernel.dim",
        "server_ticks.substrate.model_bit_identical",
    ],
    "BENCH_datacenter.json": [
        "racks",
        "secs",
        "mode",
        "digest",
        "market_rounds",
        "peak_feeder_w",
        "feeder_trip_periods",
        "conserved",
        "determinism",
        "record_mode_digest_match",
        "single_rack_equivalence",
        "replay.racks",
        "replay.ticks",
        "replay.agreement",
    ],
    "BENCH_grid.json": [
        "seed",
        "secs",
        "transparency",
        "determinism",
        "compliance.cap_w",
        "compliance.peak_cb_post_deadline_w",
        "compliance.violations",
        "compliance.trips",
        "separation.sprintcon_p99_s",
        "separation.sgct_p99_s",
    ],
}


def lookup(doc, path):
    node = doc
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return ("missing", None)
        node = node[part]
    return ("ok", node)


def committed(name):
    proc = subprocess.run(
        ["git", "show", f"HEAD:{name}"], capture_output=True, text=True
    )
    if proc.returncode != 0:
        return None
    return json.loads(proc.stdout)


def main(names):
    if not names:
        print("usage: bench_regression.py BENCH_foo.json ...", file=sys.stderr)
        return 2
    failures = []
    for name in names:
        keys = WHITELIST.get(name)
        if keys is None:
            print(f"error: no whitelist for {name}", file=sys.stderr)
            return 2
        base = committed(name)
        if base is None:
            print(f"warning: {name} has no committed baseline, skipping")
            continue
        try:
            with open(name, encoding="utf-8") as f:
                fresh = json.load(f)
        except OSError as e:
            failures.append(f"{name}: fresh copy unreadable: {e}")
            continue
        for key in keys:
            bstat, bval = lookup(base, key)
            fstat, fval = lookup(fresh, key)
            if (bstat, bval) != (fstat, fval):
                failures.append(
                    f"{name}: {key}: committed {bstat}/{bval!r} "
                    f"!= fresh {fstat}/{fval!r}"
                )
        print(f"{name}: {len(keys)} machine-independent fields checked")
    if failures:
        print("\nBENCH REGRESSION:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("bench regression: all baselines match")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
