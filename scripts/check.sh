#!/usr/bin/env bash
# Local CI gate: formatting, lints, tests, dependency hygiene. Offline-
# friendly — no network, no extra tools beyond the rust toolchain.
set -euo pipefail
cd "$(dirname "$0")/.."

# All dependencies are path deps inside the workspace, so --offline is
# normally free. On a fresh checkout with no cached registry index some
# cargo subcommands still try to touch the index and fail; probe once and
# degrade to networked mode instead of dying.
OFFLINE=(--offline)
if ! cargo metadata --format-version 1 --offline >/dev/null 2>&1; then
    echo "warning: cargo --offline has no usable index here; proceeding without it" >&2
    OFFLINE=()
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace (deny warnings)"
cargo clippy --workspace --all-targets "${OFFLINE[@]}" -- -D warnings

echo "==> cargo clippy: no new unwrap() in simkit/sprintcon"
# The crate roots carry #![cfg_attr(not(test), warn(clippy::unwrap_used))];
# promote it to an error here so new non-test unwraps fail CI.
cargo clippy -p simkit -p sprintcon "${OFFLINE[@]}" -- -D clippy::unwrap-used

echo "==> dependency hygiene: no duplicate dependency versions"
# cargo unifies semver-compatible requirements, so anything `tree -d`
# prints is a semver-incompatible (major-version) split. Keep the graph
# clean: one version of everything.
dups=$(cargo tree "${OFFLINE[@]}" --workspace -d 2>/dev/null || true)
if [ -n "$dups" ]; then
    echo "$dups"
    echo "error: duplicate dependency versions in the workspace graph" >&2
    exit 1
fi

echo "==> cargo doc --no-deps (deny rustdoc warnings)"
# Broken intra-doc links and malformed examples rot silently otherwise.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace "${OFFLINE[@]}" -q

echo "==> cargo test --doc"
# Doctests don't run under `cargo test --workspace -q` below for the
# crates that restrict test targets, so run them explicitly: README and
# DESIGN snippets are mirrored into rustdoc examples and must compile.
cargo test --doc --workspace "${OFFLINE[@]}" -q

echo "==> cargo test --workspace"
cargo test --workspace "${OFFLINE[@]}" -q

echo "==> robustness & fault-injection suites"
cargo test "${OFFLINE[@]}" -q --test robustness --test faults

echo "OK"
