#!/usr/bin/env bash
# Local CI gate: formatting, lints, tests. Offline-friendly — no network,
# no extra tools beyond the rust toolchain.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo test --workspace"
cargo test --workspace --offline -q

echo "OK"
