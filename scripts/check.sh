#!/usr/bin/env bash
# Local CI gate: formatting, lints, tests. Offline-friendly — no network,
# no extra tools beyond the rust toolchain.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo clippy: no new unwrap() in simkit/sprintcon"
# The crate roots carry #![cfg_attr(not(test), warn(clippy::unwrap_used))];
# promote it to an error here so new non-test unwraps fail CI.
cargo clippy -p simkit -p sprintcon --offline -- -D clippy::unwrap-used

echo "==> cargo test --workspace"
cargo test --workspace --offline -q

echo "==> robustness & fault-injection suites"
cargo test --offline -q --test robustness --test faults

echo "OK"
